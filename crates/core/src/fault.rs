//! Deterministic fault injection for exercising SPIRE's containment
//! paths.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This module supplies the hostile inputs the rest of the crate
//! promises to survive — non-finite and negative counter values, poisoned
//! metric columns, fits that panic or err on chosen metrics, and
//! corrupted or truncated snapshot text — all driven by a tiny seeded
//! generator ([`FaultRng`]) so every failure a test provokes can be
//! replayed from its seed.
//!
//! The injectors target the same seams real damage arrives through:
//!
//! * [`poison_metric`] writes hostile rows through
//!   [`SampleSet::push_unchecked`], the same unvalidated surface that
//!   deserialized data crosses (JSON cannot carry NaN, but a column built
//!   by serde is unvalidated all the same);
//! * [`panicking_fit`] / [`erring_fit`] substitute into
//!   [`SpireModel::train_with_report_using`](crate::SpireModel::train_with_report_using)
//!   to drive the per-metric quarantine without needing a genuinely
//!   crashing numeric kernel;
//! * [`flip_digit`] and [`truncate`] damage snapshot JSON the way storage
//!   does — a changed byte, a short read — for the checksum and
//!   container-parse paths.
//!
//! Nothing here is compiled into release binaries' hot paths; it is a
//! library so integration tests, benches, and the CLI's future chaos
//! tooling share one vocabulary of faults.

use crate::roofline::{FitOptions, PiecewiseRoofline};
use crate::sample::{MetricColumn, MetricId, SampleSet};
use crate::Result;

/// Hostile values injected into counter fields: the non-finite trio plus
/// a negative count, covering every way a raw field can leave the domain
/// [`crate::Sample::new`] enforces.
pub const POISON_VALUES: [f64; 4] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0];

/// A tiny deterministic RNG (splitmix64) for fault placement.
///
/// Not a statistical or cryptographic generator — just a stable,
/// dependency-free source of well-mixed bits so injected faults are
/// reproducible from a seed across platforms and runs.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`. `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "FaultRng::index requires a nonempty range");
        // Modulo bias is irrelevant at fault-injection scales (n << 2^64).
        (self.next_u64() % n as u64) as usize
    }

    /// One of the [`POISON_VALUES`].
    pub fn poison_value(&mut self) -> f64 {
        POISON_VALUES[self.index(POISON_VALUES.len())]
    }
}

/// Appends `rows` hostile samples to `metric`'s column, each with one
/// field (time, work, or metric delta) replaced by a poison value.
///
/// Returns the injected `(time, work, metric_delta)` rows so a test can
/// assert on exactly what was planted. The rows pass through
/// [`SampleSet::push_unchecked`], bypassing validation the same way
/// deserialized data does.
pub fn poison_metric(
    set: &mut SampleSet,
    metric: &MetricId,
    rng: &mut FaultRng,
    rows: usize,
) -> Vec<(f64, f64, f64)> {
    let mut injected = Vec::with_capacity(rows);
    for i in 0..rows {
        // Benign baseline row, then poison exactly one field.
        let mut fields = [10.0, 10.0 + i as f64, 1.0 + i as f64];
        fields[rng.index(3)] = rng.poison_value();
        let [time, work, delta] = fields;
        set.push_unchecked(metric.clone(), time, work, delta);
        injected.push((time, work, delta));
    }
    injected
}

/// A fit function for
/// [`SpireModel::train_with_report_using`](crate::SpireModel::train_with_report_using)
/// that panics on metrics whose name contains `needle` and otherwise
/// defers to [`PiecewiseRoofline::fit_column`].
///
/// Drives the [`FitPanicked`](crate::SpireError::FitPanicked) quarantine
/// path. Callers running many injected panics may want to silence the
/// global panic hook around the call (see [`silence_panics`]).
pub fn panicking_fit(
    needle: &str,
) -> impl Fn(&MetricColumn, &FitOptions) -> Result<PiecewiseRoofline> + Sync + '_ {
    move |column, fit| {
        if column.metric().as_str().contains(needle) {
            panic!("injected panic for metric {}", column.metric());
        }
        PiecewiseRoofline::fit_column(column, fit)
    }
}

/// Like [`panicking_fit`], but the targeted metrics return a typed fit
/// error ([`EmptyTrainingSet`](crate::SpireError::EmptyTrainingSet) with
/// the metric named) instead of panicking — the
/// [`FitFailed`](crate::ensemble::TrainQuarantineReason::FitFailed)
/// quarantine path.
pub fn erring_fit(
    needle: &str,
) -> impl Fn(&MetricColumn, &FitOptions) -> Result<PiecewiseRoofline> + Sync + '_ {
    move |column, fit| {
        if column.metric().as_str().contains(needle) {
            return Err(crate::SpireError::EmptyTrainingSet {
                metric: Some(column.metric().to_string()),
            });
        }
        PiecewiseRoofline::fit_column(column, fit)
    }
}

/// Runs `f` with the global panic hook silenced, restoring it afterwards.
///
/// Contained panics ([`crate::parallel::map_catching`]) still route
/// through the hook before unwinding; harnesses injecting hundreds of
/// panics use this to keep stderr readable. Restores the previous hook
/// even if `f` itself panics.
pub fn silence_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    // Restore via catch/resume rather than a drop guard: `set_hook`
    // itself panics on a panicking thread, so restoring *during* unwind
    // would abort the process.
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    match out {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Replaces one ASCII digit in `text` with a different digit, at a
/// position chosen by `rng` — a UTF-8-safe stand-in for a storage bit
/// flip that is guaranteed to change a stored number rather than JSON
/// punctuation (so the result still parses and the damage must be caught
/// by checksums or validation, the interesting case).
///
/// Returns `None` if `text` contains no digits.
pub fn flip_digit(text: &str, rng: &mut FaultRng) -> Option<String> {
    let digit_positions: Vec<usize> = text
        .bytes()
        .enumerate()
        .filter(|(_, b)| b.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    if digit_positions.is_empty() {
        return None;
    }
    let pos = digit_positions[rng.index(digit_positions.len())];
    let old = text.as_bytes()[pos];
    // Shift within '0'..='9', never landing on the original digit.
    let new = b'0' + ((old - b'0' + 1 + (rng.next_u64() % 9) as u8) % 10);
    let mut bytes = text.as_bytes().to_vec();
    bytes[pos] = new;
    Some(String::from_utf8(bytes).expect("digit-for-digit swap preserves UTF-8"))
}

/// Flips one bit of one byte in `bytes`, at a position chosen by `rng` —
/// raw storage corruption for binary formats (length prefixes, checksums,
/// journal frames) where [`flip_digit`]'s UTF-8 care does not apply.
///
/// Returns the damaged position, or `None` for an empty slice.
pub fn flip_byte(bytes: &mut [u8], rng: &mut FaultRng) -> Option<usize> {
    if bytes.is_empty() {
        return None;
    }
    let pos = rng.index(bytes.len());
    let bit = rng.index(8) as u8;
    bytes[pos] ^= 1 << bit;
    Some(pos)
}

/// Keeps the first `fraction` of `bytes` — the binary counterpart of
/// [`truncate`]: a torn write or short read of a journal segment.
pub fn truncate_bytes(bytes: &[u8], fraction: f64) -> &[u8] {
    let fraction = fraction.clamp(0.0, 1.0);
    let cut = (bytes.len() as f64 * fraction) as usize;
    &bytes[..cut.min(bytes.len())]
}

/// Keeps the first `fraction` of `text` (by bytes, snapped down to a
/// UTF-8 boundary) — a short read / interrupted write.
pub fn truncate(text: &str, fraction: f64) -> &str {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut cut = (text.len() as f64 * fraction) as usize;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    &text[..cut]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sample, SpireModel, TrainConfig, TrainStrictness};

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = FaultRng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poison_rows_bypass_validation_and_land_in_the_column() {
        let mut set = SampleSet::new();
        set.push(Sample::new("m", 10.0, 10.0, 1.0).unwrap());
        let metric = MetricId::new("m");
        let mut rng = FaultRng::new(7);
        let injected = poison_metric(&mut set, &metric, &mut rng, 5);
        assert_eq!(injected.len(), 5);
        assert_eq!(set.len(), 6);
        let column = set.column(&metric).unwrap();
        assert_eq!(column.len(), 6);
        // Every injected row has exactly one out-of-domain field.
        for (t, w, d) in injected {
            let bad = [t, w, d]
                .iter()
                .filter(|v| !v.is_finite() || **v < 0.0)
                .count();
            assert_eq!(bad, 1, "row ({t}, {w}, {d})");
        }
    }

    #[test]
    fn injected_fits_drive_both_quarantine_reasons() {
        let mut set = SampleSet::new();
        for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 3.0)] {
            set.push(Sample::new("good", 10.0, w, m).unwrap());
            set.push(Sample::new("bad_metric", 10.0, w, m).unwrap());
        }
        let panicked = silence_panics(|| {
            SpireModel::train_with_report_using(
                &set,
                TrainConfig::default(),
                TrainStrictness::Lenient,
                panicking_fit("bad"),
            )
        })
        .unwrap();
        assert_eq!(
            panicked.report.quarantined[0].reason.as_str(),
            "fit_panicked"
        );

        let erred = SpireModel::train_with_report_using(
            &set,
            TrainConfig::default(),
            TrainStrictness::Lenient,
            erring_fit("bad"),
        )
        .unwrap();
        assert_eq!(erred.report.quarantined[0].reason.as_str(), "fit_failed");
        assert_eq!(erred.model.metric_count(), 1);
    }

    #[test]
    fn flip_digit_changes_exactly_one_digit() {
        let text = r#"{"a": 12.5, "b": [3, 4]}"#;
        let mut rng = FaultRng::new(3);
        let flipped = flip_digit(text, &mut rng).unwrap();
        assert_ne!(flipped, text);
        let diffs: Vec<(char, char)> = text
            .chars()
            .zip(flipped.chars())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].0.is_ascii_digit() && diffs[0].1.is_ascii_digit());
        assert!(flip_digit("no digits here", &mut rng).is_none());
    }

    #[test]
    fn flip_byte_changes_exactly_one_bit() {
        let original = [0u8, 1, 2, 3, 4, 5, 6, 7];
        let mut rng = FaultRng::new(11);
        for _ in 0..32 {
            let mut damaged = original;
            let pos = flip_byte(&mut damaged, &mut rng).unwrap();
            let xor = damaged[pos] ^ original[pos];
            assert_eq!(xor.count_ones(), 1, "pos {pos}: {xor:#010b}");
            let diffs = damaged
                .iter()
                .zip(original.iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1);
        }
        assert!(flip_byte(&mut [], &mut rng).is_none());
    }

    #[test]
    fn truncate_bytes_keeps_a_prefix() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        for pct in 0..=10 {
            let cut = truncate_bytes(&bytes, pct as f64 / 10.0);
            assert!(bytes.starts_with(cut));
        }
        assert_eq!(truncate_bytes(&bytes, 1.0), &bytes[..]);
        assert!(truncate_bytes(&bytes, 0.0).is_empty());
    }

    #[test]
    fn truncate_respects_utf8_boundaries() {
        let text = "abc\u{00e9}def"; // 'é' is 2 bytes
        for pct in 0..=10 {
            let cut = truncate(text, pct as f64 / 10.0);
            assert!(text.starts_with(cut));
        }
        assert_eq!(truncate(text, 1.0), text);
        assert_eq!(truncate(text, 0.0), "");
    }

    #[test]
    fn silence_panics_restores_the_hook_on_unwind() {
        let result = std::panic::catch_unwind(|| {
            silence_panics(|| panic!("inner"));
        });
        assert!(result.is_err());
        // The default (or prior) hook is back; nothing observable to
        // assert beyond "set_hook did not panic", which take/set verify.
        let hook = std::panic::take_hook();
        std::panic::set_hook(hook);
    }
}
