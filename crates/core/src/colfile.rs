//! Checksummed, chunked binary column-file layout for sample datasets.
//!
//! The paper-scale dataset (1.3M samples x 424 metrics) spends far more
//! time in JSON parsing than in fitting; this module stores the columnar
//! [`SampleSet`] layout directly on disk so a load is straight `f64`
//! column copies — or borrowed slices from an mmap'd buffer — with no
//! per-value parsing.
//!
//! # On-disk layout
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header (64 bytes, fixed)                                     |
//! |   0..8   magic  "SPIRECOL"                                   |
//! |   8..12  format version (u32 LE)                             |
//! |  12..16  endianness marker 0x01020304 (u32 LE)               |
//! |  16..24  directory offset (u64 LE)                           |
//! |  24..32  directory length (u64 LE)                           |
//! |  32..40  total file length (u64 LE)                          |
//! |  40..48  FNV-1a 64 checksum of the directory bytes (u64 LE)  |
//! |  48..56  FNV-1a 64 checksum of header bytes 0..48 (u64 LE)   |
//! |  56..64  reserved (zero)                                     |
//! +--------------------------------------------------------------+
//! | data chunks, each 64-byte aligned                            |
//! |   chunk = time[rows] ++ pad64 ++ work[rows] ++ pad64         |
//! |           ++ metric_delta[rows] ++ pad64   (f64 LE each)     |
//! +--------------------------------------------------------------+
//! | directory (JSON): sections -> columns -> chunk table         |
//! |   each chunk entry: rows, byte offset, FNV-1a 64 checksum    |
//! |   plus an opaque `meta` string for the embedding layer       |
//! +--------------------------------------------------------------+
//! ```
//!
//! Values are always written little-endian; the endianness marker lets a
//! foreign-order reader detect the mismatch and refuse rather than decode
//! garbage. Each chunk start — and, via the per-array zero padding, each
//! of the three arrays inside it — is aligned to [`CHUNK_ALIGN`] bytes so
//! an mmap'd file can hand out `&[f64]` views directly.
//!
//! # Integrity taxonomy
//!
//! The same salvage-or-refuse rules as model snapshots
//! ([`crate::snapshot`]): damage to the header or directory is fatal in
//! both modes (there is nothing to salvage without the map), while a
//! checksum mismatch in a data chunk quarantines just that chunk's rows
//! under [`SnapshotMode::Lenient`] and refuses the whole file with
//! [`SpireError::ColumnChunkCorrupt`] under [`SnapshotMode::Strict`]. A
//! damaged chunk is therefore always quarantined or refused — never
//! silently decoded into wrong columns.

use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};
use crate::sample::{MetricColumn, MetricId, SampleSet};
use crate::snapshot::{fnv1a64, SnapshotMode};

/// The 8-byte magic every column file starts with.
pub const COLFILE_MAGIC: [u8; 8] = *b"SPIRECOL";

/// Current format version written by [`ColFileWriter`].
pub const COLFILE_FORMAT_VERSION: u32 = 1;

/// Alignment (bytes) of every chunk and of each array within a chunk.
pub const CHUNK_ALIGN: usize = 64;

/// Default number of rows per chunk (~96 KiB of payload per chunk).
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Marker value distinguishing byte orders: written little-endian, so a
/// big-endian reader sees `0x04030201` and refuses.
const ENDIAN_MARK: u32 = 0x0102_0304;

const HEADER_LEN: usize = 64;

/// Rounds `n` up to the next multiple of [`CHUNK_ALIGN`].
fn pad64(n: usize) -> usize {
    n.div_ceil(CHUNK_ALIGN) * CHUNK_ALIGN
}

fn format_err(reason: impl Into<String>) -> SpireError {
    SpireError::SnapshotFormat {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

/// One chunk of one column: a contiguous row range with its own checksum.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChunkEntry {
    /// Rows stored in this chunk.
    rows: u64,
    /// Absolute byte offset of the chunk start (64-byte aligned).
    offset: u64,
    /// FNV-1a 64 checksum of the full padded chunk span, lowercase hex.
    checksum: String,
}

/// The chunk table for one metric's column.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ColumnEntry {
    metric: String,
    rows: u64,
    chunks: Vec<ChunkEntry>,
}

/// One labeled dataset section (a workload label's [`SampleSet`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SectionEntry {
    label: String,
    columns: Vec<ColumnEntry>,
}

/// The JSON directory stored at the end of the file. Parsing it is
/// negligible next to the per-value `f64` parsing the format eliminates.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Directory {
    sections: Vec<SectionEntry>,
    /// Opaque metadata for the embedding layer (the counters crate stores
    /// its per-label ingest reports here); preserved verbatim.
    meta: String,
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

struct Header {
    dir_offset: usize,
    dir_len: usize,
    total_len: usize,
    dir_checksum: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

/// Parses and integrity-checks the fixed header. All failures are
/// container-level ([`SpireError::SnapshotFormat`]): without a trusted
/// header there is nothing to salvage.
fn parse_header(bytes: &[u8]) -> Result<Header> {
    if bytes.len() < HEADER_LEN {
        return Err(format_err(format!(
            "column file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..8] != COLFILE_MAGIC {
        return Err(format_err("missing SPIRECOL magic"));
    }
    let version = read_u32(bytes, 8);
    if version != COLFILE_FORMAT_VERSION {
        return Err(format_err(format!(
            "unsupported column-file format version {version} \
             (this build reads version {COLFILE_FORMAT_VERSION})"
        )));
    }
    let endian = read_u32(bytes, 12);
    if endian != ENDIAN_MARK {
        return Err(format_err(format!(
            "endianness marker is {endian:#010x}, expected {ENDIAN_MARK:#010x}; \
             the file was written on a foreign-byte-order machine"
        )));
    }
    let stored = read_u64(bytes, 48);
    let actual = fnv1a64(&bytes[..48]);
    if stored != actual {
        return Err(format_err(format!(
            "header checksum mismatch (stored {stored:016x}, computed {actual:016x})"
        )));
    }
    let header = Header {
        dir_offset: read_u64(bytes, 16) as usize,
        dir_len: read_u64(bytes, 24) as usize,
        total_len: read_u64(bytes, 32) as usize,
        dir_checksum: read_u64(bytes, 40),
    };
    if header.total_len != bytes.len() {
        return Err(format_err(format!(
            "file is {} bytes but the header records {} — truncated or padded",
            bytes.len(),
            header.total_len
        )));
    }
    let dir_end = header.dir_offset.checked_add(header.dir_len);
    if header.dir_offset < HEADER_LEN || dir_end.is_none_or(|end| end > bytes.len()) {
        return Err(format_err("directory range is out of bounds"));
    }
    Ok(header)
}

/// Parses and integrity-checks the directory named by a trusted header.
fn parse_directory(bytes: &[u8], header: &Header) -> Result<Directory> {
    let dir_bytes = &bytes[header.dir_offset..header.dir_offset + header.dir_len];
    let actual = fnv1a64(dir_bytes);
    if actual != header.dir_checksum {
        return Err(format_err(format!(
            "directory checksum mismatch (stored {:016x}, computed {actual:016x})",
            header.dir_checksum
        )));
    }
    let text = std::str::from_utf8(dir_bytes)
        .map_err(|e| format_err(format!("directory is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| format_err(format!("directory does not parse: {e}")))
}

/// Returns `true` if `bytes` begin with the column-file magic — the sniff
/// [`crate::snapshot`]-style loaders use to dispatch between JSON and
/// binary inputs.
pub fn is_colfile(bytes: &[u8]) -> bool {
    bytes.len() >= COLFILE_MAGIC.len() && bytes[..COLFILE_MAGIC.len()] == COLFILE_MAGIC
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming writer: add labeled sections, then [`ColFileWriter::finish`]
/// into the complete file image.
pub struct ColFileWriter {
    buf: Vec<u8>,
    sections: Vec<SectionEntry>,
    meta: String,
    chunk_rows: usize,
}

impl Default for ColFileWriter {
    fn default() -> Self {
        ColFileWriter::new()
    }
}

impl ColFileWriter {
    /// A writer with the default chunk size ([`DEFAULT_CHUNK_ROWS`]).
    pub fn new() -> Self {
        ColFileWriter::with_chunk_rows(DEFAULT_CHUNK_ROWS)
    }

    /// A writer splitting columns into chunks of at most `chunk_rows` rows
    /// (clamped to at least 1). Smaller chunks localize corruption at the
    /// cost of directory size; tests use tiny chunks to exercise the
    /// quarantine paths.
    pub fn with_chunk_rows(chunk_rows: usize) -> Self {
        ColFileWriter {
            buf: vec![0u8; HEADER_LEN],
            sections: Vec::new(),
            meta: String::new(),
            chunk_rows: chunk_rows.max(1),
        }
    }

    /// Sets the opaque metadata string preserved in the directory.
    pub fn set_meta(&mut self, meta: impl Into<String>) {
        self.meta = meta.into();
    }

    /// Appends one labeled section holding `set`'s columns.
    pub fn add_section(&mut self, label: &str, set: &SampleSet) {
        let mut columns = Vec::with_capacity(set.columns().len());
        for column in set.columns() {
            columns.push(self.add_column(column));
        }
        self.sections.push(SectionEntry {
            label: label.to_owned(),
            columns,
        });
    }

    fn add_column(&mut self, column: &MetricColumn) -> ColumnEntry {
        let rows = column.len();
        let mut chunks = Vec::with_capacity(rows.div_ceil(self.chunk_rows.max(1)));
        let mut start = 0usize;
        while start < rows {
            let end = rows.min(start + self.chunk_rows);
            chunks.push(self.add_chunk(
                &column.times()[start..end],
                &column.works()[start..end],
                &column.metric_deltas()[start..end],
            ));
            start = end;
        }
        ColumnEntry {
            metric: column.metric().to_string(),
            rows: rows as u64,
            chunks,
        }
    }

    fn add_chunk(&mut self, time: &[f64], work: &[f64], delta: &[f64]) -> ChunkEntry {
        // Align the chunk start, then write each array padded to the
        // alignment so every array start inside the chunk is aligned too.
        self.buf.resize(pad64(self.buf.len()), 0);
        let offset = self.buf.len();
        for array in [time, work, delta] {
            for &v in array {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
            self.buf.resize(pad64(self.buf.len()), 0);
        }
        let checksum = fnv1a64(&self.buf[offset..]);
        ChunkEntry {
            rows: time.len() as u64,
            offset: offset as u64,
            checksum: format!("{checksum:016x}"),
        }
    }

    /// Serializes the directory, fills in the header, and returns the
    /// complete file image.
    pub fn finish(mut self) -> Vec<u8> {
        let directory = Directory {
            sections: std::mem::take(&mut self.sections),
            meta: std::mem::take(&mut self.meta),
        };
        let dir_bytes = serde_json::to_string(&directory)
            .expect("directory serializes")
            .into_bytes();
        let dir_offset = self.buf.len();
        let dir_checksum = fnv1a64(&dir_bytes);
        self.buf.extend_from_slice(&dir_bytes);
        let total_len = self.buf.len();

        let header = &mut self.buf[..HEADER_LEN];
        header[..8].copy_from_slice(&COLFILE_MAGIC);
        header[8..12].copy_from_slice(&COLFILE_FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
        header[16..24].copy_from_slice(&(dir_offset as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(dir_bytes.len() as u64).to_le_bytes());
        header[32..40].copy_from_slice(&(total_len as u64).to_le_bytes());
        header[40..48].copy_from_slice(&dir_checksum.to_le_bytes());
        let head_checksum = fnv1a64(&header[..48]);
        header[48..56].copy_from_slice(&head_checksum.to_le_bytes());
        self.buf
    }
}

/// Encodes labeled sample sets (and an opaque metadata string) into a
/// complete column-file image with default chunking.
pub fn write_sections<'a>(
    sections: impl IntoIterator<Item = (&'a str, &'a SampleSet)>,
    meta: &str,
) -> Vec<u8> {
    let mut writer = ColFileWriter::new();
    writer.set_meta(meta);
    for (label, set) in sections {
        writer.add_section(label, set);
    }
    writer.finish()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One data chunk dropped by a lenient load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedChunk {
    /// Section (workload label) the chunk belonged to.
    pub label: String,
    /// Metric whose column lost rows.
    pub metric: String,
    /// Index of the chunk within its column's chunk table.
    pub chunk: usize,
    /// Rows the chunk stored (all dropped).
    pub rows: u64,
    /// Why the chunk was rejected.
    pub reason: String,
}

/// Integrity outcome of a column-file load — the formats's analogue of the
/// snapshot load report, so ingest provenance survives the format change.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColFileReport {
    /// Chunks the directory described.
    pub chunks_total: usize,
    /// Rows the directory described.
    pub rows_total: u64,
    /// Rows dropped with their chunks (lenient mode only; strict loads
    /// refuse instead).
    pub rows_dropped: u64,
    /// Every quarantined chunk, in directory order.
    pub quarantined: Vec<QuarantinedChunk>,
}

impl ColFileReport {
    /// `true` if every chunk verified and decoded.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// A fully decoded column file: labeled sample sets in stored order, the
/// opaque metadata string, and the integrity report.
#[derive(Debug, Clone)]
pub struct ColFileContents {
    /// Labeled sections in stored order.
    pub sections: Vec<(String, SampleSet)>,
    /// The opaque metadata string the writer stored.
    pub meta: String,
    /// Chunk integrity outcome.
    pub report: ColFileReport,
}

/// Decodes a column-file image.
///
/// # Errors
///
/// [`SpireError::SnapshotFormat`] for container-level damage (bad magic,
/// version, endianness, header or directory checksum, truncation) in both
/// modes; [`SpireError::ColumnChunkCorrupt`] for the first damaged data
/// chunk under [`SnapshotMode::Strict`]. Lenient loads quarantine damaged
/// chunks into the report instead.
pub fn read(bytes: &[u8], mode: SnapshotMode) -> Result<ColFileContents> {
    let header = parse_header(bytes)?;
    let directory = parse_directory(bytes, &header)?;
    let mut report = ColFileReport::default();
    let mut sections = Vec::with_capacity(directory.sections.len());
    for section in &directory.sections {
        let mut columns = Vec::with_capacity(section.columns.len());
        for entry in &section.columns {
            if let Some(column) = decode_column(bytes, section, entry, mode, &mut report)? {
                columns.push(column);
            }
        }
        let set = SampleSet::from_columns(columns).map_err(|e| {
            format_err(format!(
                "directory for section `{}` is invalid: {e}",
                section.label
            ))
        })?;
        sections.push((section.label.clone(), set));
    }
    Ok(ColFileContents {
        sections,
        meta: directory.meta,
        report,
    })
}

/// Decodes one column, quarantining or refusing damaged chunks per `mode`.
/// Returns `None` when every chunk of a non-empty column was quarantined —
/// an empty remnant column would change the set's structure, so it is
/// dropped entirely (and fully accounted in the report).
fn decode_column(
    bytes: &[u8],
    section: &SectionEntry,
    entry: &ColumnEntry,
    mode: SnapshotMode,
    report: &mut ColFileReport,
) -> Result<Option<MetricColumn>> {
    let rows = entry.rows as usize;
    let mut time = Vec::with_capacity(rows);
    let mut work = Vec::with_capacity(rows);
    let mut delta = Vec::with_capacity(rows);
    let mut dropped_any = false;
    for (index, chunk) in entry.chunks.iter().enumerate() {
        report.chunks_total += 1;
        report.rows_total += chunk.rows;
        match verify_chunk(bytes, chunk) {
            Ok(spans) => {
                decode_f64s(&mut time, spans[0]);
                decode_f64s(&mut work, spans[1]);
                decode_f64s(&mut delta, spans[2]);
            }
            Err(reason) => {
                if mode == SnapshotMode::Strict {
                    return Err(SpireError::ColumnChunkCorrupt {
                        label: section.label.clone(),
                        metric: entry.metric.clone(),
                        chunk: index,
                        reason,
                    });
                }
                dropped_any = true;
                report.rows_dropped += chunk.rows;
                report.quarantined.push(QuarantinedChunk {
                    label: section.label.clone(),
                    metric: entry.metric.clone(),
                    chunk: index,
                    rows: chunk.rows,
                    reason,
                });
            }
        }
    }
    if dropped_any && time.is_empty() && rows > 0 {
        return Ok(None);
    }
    let column = MetricColumn::from_raw_columns(MetricId::new(&entry.metric), time, work, delta)
        .expect("decoded arrays share the chunk row counts");
    Ok(Some(column))
}

/// Bounds- and checksum-checks one chunk, returning the three array byte
/// spans on success or the refusal reason on failure.
fn verify_chunk<'a>(
    bytes: &'a [u8],
    chunk: &ChunkEntry,
) -> std::result::Result<[&'a [u8]; 3], String> {
    let rows = chunk.rows as usize;
    let offset = chunk.offset as usize;
    let array_span = pad64(rows * 8);
    let len = array_span * 3;
    let end = offset.checked_add(len).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(format!(
            "chunk range {offset}..{} is out of bounds (file is {} bytes)",
            offset.saturating_add(len),
            bytes.len()
        ));
    };
    if !offset.is_multiple_of(CHUNK_ALIGN) {
        return Err(format!(
            "chunk offset {offset} is not {CHUNK_ALIGN}-byte aligned"
        ));
    }
    let span = &bytes[offset..end];
    let actual = format!("{:016x}", fnv1a64(span));
    if actual != chunk.checksum {
        return Err(format!(
            "checksum mismatch (stored {}, computed {actual})",
            chunk.checksum
        ));
    }
    Ok([
        &span[..rows * 8],
        &span[array_span..array_span + rows * 8],
        &span[2 * array_span..2 * array_span + rows * 8],
    ])
}

/// Decodes a little-endian `f64` byte span into `dst`. `chunks_exact` +
/// `from_le_bytes` compiles to a straight copy on little-endian targets.
fn decode_f64s(dst: &mut Vec<f64>, bytes: &[u8]) {
    dst.extend(
        bytes
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
    );
}

// ---------------------------------------------------------------------------
// Zero-copy mmap view (unix)
// ---------------------------------------------------------------------------

/// Read-only mmap'd view of a column file: borrowed `&[f64]` chunk slices
/// with no decode copy.
///
/// This is the single audited `unsafe` island in the crate (the rest is
/// `#![deny(unsafe_code)]`-clean): a private read-only mapping plus
/// bounds- and alignment-checked slice reborrows. Opening verifies the
/// header and directory; data chunks are verified lazily by
/// [`MappedColFile::verify`] or chunk access, so an open is O(directory).
#[cfg(unix)]
pub mod mmap {
    #![allow(unsafe_code)]

    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    use super::{
        parse_directory, parse_header, ColFileReport, Directory, QuarantinedChunk, CHUNK_ALIGN,
    };
    use crate::error::{Result, SpireError};

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// One borrowed chunk of a column: the three raw arrays as `&[f64]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ChunkSlices<'a> {
        /// The `T` rows of this chunk.
        pub times: &'a [f64],
        /// The `W` rows of this chunk.
        pub works: &'a [f64],
        /// The `M_x` rows of this chunk.
        pub metric_deltas: &'a [f64],
    }

    /// Owns one live mapping; unmaps on drop.
    struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is private, read-only, and owned by this value
    // for its whole lifetime; shared references to it are as safe as
    // shared references to a Vec<u8>.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact mapping returned by mmap and
            // no borrow of it can outlive self.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    /// See the [module docs](self).
    pub struct MappedColFile {
        map: Mapping,
        directory: Directory,
    }

    impl MappedColFile {
        /// Maps `path` read-only and verifies its header and directory.
        ///
        /// # Errors
        ///
        /// [`SpireError::SnapshotFormat`] for I/O or mapping failures and
        /// for container-level damage, as in [`super::read`].
        pub fn open(path: &Path) -> Result<Self> {
            let file = File::open(path).map_err(|e| SpireError::SnapshotFormat {
                reason: format!("cannot open {}: {e}", path.display()),
            })?;
            let len = file
                .metadata()
                .map_err(|e| SpireError::SnapshotFormat {
                    reason: format!("cannot stat {}: {e}", path.display()),
                })?
                .len() as usize;
            if len == 0 {
                return Err(SpireError::SnapshotFormat {
                    reason: format!("{} is empty", path.display()),
                });
            }
            // SAFETY: length is non-zero and the fd is open for reading;
            // a MAP_PRIVATE read-only mapping has no aliasing obligations.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return Err(SpireError::SnapshotFormat {
                    reason: format!("mmap of {} failed", path.display()),
                });
            }
            let map = Mapping { ptr, len };
            // SAFETY: as in `bytes` — the mapping is live and private.
            let bytes = unsafe { std::slice::from_raw_parts(map.ptr, map.len) };
            let header = parse_header(bytes)?;
            let directory = parse_directory(bytes, &header)?;
            Ok(MappedColFile { map, directory })
        }

        /// The whole mapped file as bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe the live private mapping owned by
            // self; it is unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.map.ptr, self.map.len) }
        }

        /// The opaque metadata string the writer stored.
        pub fn meta(&self) -> &str {
            &self.directory.meta
        }

        /// Section labels, in stored order.
        pub fn labels(&self) -> impl Iterator<Item = &str> {
            self.directory.sections.iter().map(|s| s.label.as_str())
        }

        /// Metric names of one section, in stored (sorted) order.
        pub fn metrics(&self, label: &str) -> Option<impl Iterator<Item = &str>> {
            self.directory
                .sections
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.columns.iter().map(|c| c.metric.as_str()))
        }

        /// Borrowed chunk slices of one column, verifying each chunk's
        /// checksum before handing out its rows.
        ///
        /// # Errors
        ///
        /// [`SpireError::ColumnChunkCorrupt`] on the first damaged chunk
        /// (a zero-copy view has no salvage mode — the caller asked for
        /// exactly these rows).
        pub fn column(&self, label: &str, metric: &str) -> Result<Vec<ChunkSlices<'_>>> {
            let section = self
                .directory
                .sections
                .iter()
                .find(|s| s.label == label)
                .ok_or_else(|| SpireError::SnapshotFormat {
                    reason: format!("no section `{label}` in column file"),
                })?;
            let entry = section
                .columns
                .iter()
                .find(|c| c.metric == metric)
                .ok_or_else(|| SpireError::SnapshotFormat {
                    reason: format!("no metric `{metric}` in section `{label}`"),
                })?;
            let mut out = Vec::with_capacity(entry.chunks.len());
            for (index, chunk) in entry.chunks.iter().enumerate() {
                let spans = super::verify_chunk(self.bytes(), chunk).map_err(|reason| {
                    SpireError::ColumnChunkCorrupt {
                        label: label.to_owned(),
                        metric: metric.to_owned(),
                        chunk: index,
                        reason,
                    }
                })?;
                out.push(ChunkSlices {
                    times: borrow_f64s(spans[0]),
                    works: borrow_f64s(spans[1]),
                    metric_deltas: borrow_f64s(spans[2]),
                });
            }
            Ok(out)
        }

        /// Verifies every chunk checksum, returning the same report shape
        /// as a lenient [`super::read`] (without decoding any rows).
        pub fn verify(&self) -> ColFileReport {
            let mut report = ColFileReport::default();
            for section in &self.directory.sections {
                for entry in &section.columns {
                    for (index, chunk) in entry.chunks.iter().enumerate() {
                        report.chunks_total += 1;
                        report.rows_total += chunk.rows;
                        if let Err(reason) = super::verify_chunk(self.bytes(), chunk) {
                            report.rows_dropped += chunk.rows;
                            report.quarantined.push(QuarantinedChunk {
                                label: section.label.clone(),
                                metric: entry.metric.clone(),
                                chunk: index,
                                rows: chunk.rows,
                                reason,
                            });
                        }
                    }
                }
            }
            report
        }
    }

    /// Reborrows an 8-byte-aligned little-endian byte span as `&[f64]`.
    ///
    /// # Panics
    ///
    /// If the span is misaligned or ragged — impossible for spans produced
    /// by `verify_chunk`, whose offsets are 64-byte aligned within a
    /// page-aligned mapping.
    fn borrow_f64s(bytes: &[u8]) -> &[f64] {
        assert_eq!(bytes.len() % 8, 0, "ragged f64 span");
        assert_eq!(
            bytes.as_ptr() as usize % std::mem::align_of::<f64>(),
            0,
            "misaligned f64 span"
        );
        // SAFETY: alignment and length are checked above; every bit
        // pattern is a valid f64; the borrow shares self's lifetime. This
        // only runs on little-endian targets in practice (the header's
        // endianness marker refuses foreign files), and `f64` has no
        // endianness beyond its bytes — the marker check at open time is
        // what guarantees the bytes are native-order.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), bytes.len() / 8) }
    }

    const _: () = assert!(CHUNK_ALIGN.is_multiple_of(std::mem::align_of::<f64>()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    fn sample_set(seed: u64, rows: usize) -> SampleSet {
        let mut set = SampleSet::new();
        for i in 0..rows {
            let v = (seed + i as u64) as f64;
            set.push(Sample::new("cycles", 1.0 + v, 2.0 * v + 1.0, 0.5 + v).unwrap());
            set.push(Sample::new("stalls", 2.0 + v, v + 3.0, 1.0 + v).unwrap());
        }
        set
    }

    #[test]
    fn round_trips_sections_meta_and_exact_bits() {
        let a = sample_set(1, 100);
        let b = sample_set(7, 33);
        let image = write_sections([("wl_a", &a), ("wl_b", &b)], "meta-blob");
        assert!(is_colfile(&image));
        let contents = read(&image, SnapshotMode::Strict).unwrap();
        assert_eq!(contents.meta, "meta-blob");
        assert!(contents.report.is_clean());
        assert_eq!(contents.sections.len(), 2);
        assert_eq!(contents.sections[0].0, "wl_a");
        assert_eq!(contents.sections[0].1, a);
        assert_eq!(contents.sections[1].1, b);
        // Bit-level check beyond PartialEq: NaN-tolerant exactness.
        let col = contents.sections[0].1.column(&"cycles".into()).unwrap();
        let orig = a.column(&"cycles".into()).unwrap();
        for (x, y) in col.times().iter().zip(orig.times()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn round_trips_hostile_values_exactly() {
        let mut set = SampleSet::new();
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 1e-308] {
            set.push_unchecked("weird".into(), v, v, v);
        }
        let image = write_sections([("w", &set)], "");
        let contents = read(&image, SnapshotMode::Strict).unwrap();
        let col = contents.sections[0].1.column(&"weird".into()).unwrap();
        let orig = set.column(&"weird".into()).unwrap();
        for (x, y) in col.times().iter().zip(orig.times()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn chunk_corruption_refused_strict_quarantined_lenient() {
        let set = sample_set(3, 64);
        let mut writer = ColFileWriter::with_chunk_rows(16);
        writer.add_section("w", &set);
        let mut image = writer.finish();
        // Flip one byte inside the first chunk's payload (past the header).
        image[HEADER_LEN + 3] ^= 0x40;
        let err = read(&image, SnapshotMode::Strict).unwrap_err();
        assert!(
            matches!(err, SpireError::ColumnChunkCorrupt { .. }),
            "{err}"
        );
        let contents = read(&image, SnapshotMode::Lenient).unwrap();
        assert_eq!(contents.report.quarantined.len(), 1);
        assert_eq!(contents.report.rows_dropped, 16);
        let col = contents.sections[0].1.column(&"cycles".into()).unwrap();
        assert_eq!(col.len(), 48);
        // The surviving rows are the later chunks, bit-exact.
        let orig = set.column(&"cycles".into()).unwrap();
        assert_eq!(col.times(), &orig.times()[16..]);
    }

    #[test]
    fn header_and_directory_damage_is_fatal_in_both_modes() {
        let set = sample_set(5, 8);
        let image = write_sections([("w", &set)], "");
        for at in [0usize, 9, 50, image.len() - 4] {
            let mut bad = image.clone();
            bad[at] ^= 0xff;
            for mode in [SnapshotMode::Strict, SnapshotMode::Lenient] {
                let err = read(&bad, mode).unwrap_err();
                assert!(
                    matches!(err, SpireError::SnapshotFormat { .. }),
                    "at {at}: {err}"
                );
            }
        }
        // Truncation too.
        let cut = &image[..image.len() - 7];
        assert!(read(cut, SnapshotMode::Lenient).is_err());
    }

    #[test]
    fn empty_sets_and_empty_files_round_trip() {
        let empty = SampleSet::new();
        let image = write_sections([("w", &empty)], "m");
        let contents = read(&image, SnapshotMode::Strict).unwrap();
        assert!(contents.sections[0].1.is_empty());
        let none = write_sections(std::iter::empty::<(&str, &SampleSet)>(), "");
        assert!(read(&none, SnapshotMode::Strict)
            .unwrap()
            .sections
            .is_empty());
        assert!(!is_colfile(b"{\"not\": \"binary\"}"));
    }

    #[cfg(unix)]
    #[test]
    fn mmap_view_matches_decoded_columns() {
        let set = sample_set(11, 200);
        let mut writer = ColFileWriter::with_chunk_rows(64);
        writer.add_section("w", &set);
        writer.set_meta("m");
        let image = writer.finish();
        let dir = std::env::temp_dir().join(format!("spire_colfile_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("view.spirecol");
        crate::snapshot::write_atomic_bytes(&path, &image).unwrap();

        let mapped = mmap::MappedColFile::open(&path).unwrap();
        assert_eq!(mapped.meta(), "m");
        assert_eq!(mapped.labels().collect::<Vec<_>>(), ["w"]);
        assert!(mapped.verify().is_clean());
        let decoded = read(&image, SnapshotMode::Strict).unwrap();
        let col = decoded.sections[0].1.column(&"cycles".into()).unwrap();
        let chunks = mapped.column("w", "cycles").unwrap();
        let stitched: Vec<f64> = chunks
            .iter()
            .flat_map(|c| c.times.iter().copied())
            .collect();
        assert_eq!(stitched, col.times());
        let lens: Vec<usize> = chunks.iter().map(|c| c.works.len()).collect();
        assert_eq!(lens, [64, 64, 64, 8]);

        // Corrupt on disk: the view refuses the damaged chunk.
        let mut bad = image.clone();
        bad[HEADER_LEN + 8] ^= 1;
        crate::snapshot::write_atomic_bytes(&path, &bad).unwrap();
        let mapped = mmap::MappedColFile::open(&path).unwrap();
        assert!(mapped.column("w", "cycles").is_err());
        assert_eq!(mapped.verify().quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
