//! Incremental model maintenance: the streaming counterpart of
//! [`SpireModel::train`].
//!
//! An [`OnlineTrainer`] accepts sample batches ([`OnlineTrainer::push_batch`])
//! and, on [`OnlineTrainer::commit`], produces a model **bit-identical** to a
//! batch retrain over every sample pushed so far — while refitting only the
//! metrics whose fit inputs actually changed. Three mechanisms make the
//! incremental path cheap without perturbing the result:
//!
//! * **Dirty-front tracking.** Each trained metric keeps the intermediate
//!   structures of its last fit (left hull, apex, un-thinned right-region
//!   Pareto front, infinite-intensity tail height). New samples are
//!   classified against them: a sample weakly dominated by the maintained
//!   front is an exact no-op (`Clean`, checked in O(log k)); a sample right
//!   of the apex that extends the front triggers a right-region-only refit
//!   (`Right`); anything that could touch the left hull or apex falls back
//!   to a full per-metric refit (`Full`).
//! * **Patchable prefix sums.** The right-region fitter's `x/x²/y/y²/xy`
//!   prefix sums ([`PrefixSums`]) are truncated and re-accumulated from the
//!   insertion point only, replaying the same additions in the same order —
//!   so a patched fit is bit-identical to a from-scratch one.
//! * **Exact-or-refit classification.** Every classification that avoids a
//!   refit is an *exact set-level no-op* (weak dominance, unchanged
//!   infinite-intensity maximum) or an order-free exact aggregate. Anything
//!   approximate — in particular samples at or left of the apex, whose
//!   interaction with the tolerance-based hull walk is not exactly
//!   predictable — conservatively refits. Equality with the batch path is
//!   therefore structural, not a tolerance.
//!
//! Commit mirrors the batch trainer's control flow exactly (skip ordering,
//! quarantine flattening, strict-mode first-error, budget and empty checks),
//! so reports, notices, and error behavior also match a batch retrain.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ensemble::{
    QuarantinedMetric, SpireModel, TrainConfig, TrainQuarantineReason, TrainReport, TrainStrictness,
};
use crate::error::{Result, SpireError};
use crate::geometry::Point;
use crate::parallel;
use crate::roofline::{FitArtifacts, PiecewiseRoofline, PrefixSums, ThinningNotice};
use crate::sample::{MetricColumn, MetricId, SampleSet};

/// What the next commit must do for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dirty {
    /// New samples (if any) were exact no-ops; only the recorded
    /// training-sample count needs patching.
    Clean,
    /// The right-region inputs (Pareto front or infinite-intensity height)
    /// changed; refit the right region from the maintained structures.
    Right,
    /// The fit must be recomputed from the full column.
    Full,
}

/// The maintained incremental state of one metric's fit.
#[derive(Debug, Clone)]
enum Tracker {
    /// Every sample so far had infinite intensity: the fit is a constant at
    /// the running maximum throughput.
    Constant { inf_height: f64 },
    /// A Graph-mode fit with a non-degenerate apex, maintainable in place.
    Fitted {
        /// Left-hull knots, origin to apex (ascending intensity).
        left: Vec<Point>,
        /// The hull's apex (also the last front point).
        apex: Point,
        /// The un-thinned right-region Pareto front (descending intensity,
        /// strictly increasing throughput, apex last).
        front: Vec<Point>,
        /// Prefix sums over `front`, kept in sync by patching.
        sums: PrefixSums,
        /// Running maximum throughput over infinite-intensity samples.
        inf_height: Option<f64>,
    },
    /// Not incrementally maintainable (Auto/Plateau right regions,
    /// degenerate fits, quarantined or never-fitted metrics): any new
    /// sample forces a full refit.
    Opaque,
}

/// What the last commit concluded about one metric.
#[derive(Debug, Clone)]
enum SlotStatus {
    /// Samples exist but no commit has processed them yet.
    Pending,
    /// The metric has a validated roofline (owned by the maintained
    /// model, not the slot).
    Trained,
    /// The metric's fit failed and was quarantined (lenient mode).
    Quarantined(QuarantinedMetric),
}

/// Per-metric incremental state.
#[derive(Debug, Clone)]
struct Slot {
    status: SlotStatus,
    dirty: Dirty,
    tracker: Tracker,
    /// The thinning notice the metric's current fit produced (kept across
    /// clean commits: an unchanged front implies an unchanged decision).
    notice: Option<ThinningNotice>,
}

impl Slot {
    fn pending() -> Self {
        Slot {
            status: SlotStatus::Pending,
            dirty: Dirty::Full,
            tracker: Tracker::Opaque,
            notice: None,
        }
    }
}

/// How a commit handled one metric that needed work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobClass {
    Full,
    Right,
    ConstantRaise,
}

/// One refit job, borrowing the trainer's immutable state.
enum JobKind<'a> {
    Full {
        column: &'a MetricColumn,
    },
    Right {
        left: &'a [Point],
        front: &'a [Point],
        sums: &'a PrefixSums,
        inf_height: Option<f64>,
        training_samples: usize,
    },
    ConstantRaise {
        height: f64,
        training_samples: usize,
    },
}

struct Job<'a> {
    metric: MetricId,
    class: JobClass,
    kind: JobKind<'a>,
}

/// What one [`OnlineTrainer::commit`] did, beyond the model itself.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UpdateReport {
    /// Samples pushed since the previous commit.
    pub samples_added: usize,
    /// Metrics refitted from their full column, in metric-name order.
    pub refit_full: Vec<MetricId>,
    /// Metrics whose right region was patched in place (including constant
    /// fits whose height rose), in metric-name order.
    pub refit_right: Vec<MetricId>,
    /// Metrics that received samples which were exact no-ops, in
    /// metric-name order.
    pub unchanged: Vec<MetricId>,
}

impl UpdateReport {
    /// Metrics that received at least one sample since the last commit.
    pub fn metrics_touched(&self) -> usize {
        self.refit_full.len() + self.refit_right.len() + self.unchanged.len()
    }

    /// One-line summary, e.g.
    /// `+120 samples: 2 full refits, 3 right patches, 5 unchanged`.
    pub fn summary(&self) -> String {
        format!(
            "+{} samples: {} full refits, {} right patches, {} unchanged",
            self.samples_added,
            self.refit_full.len(),
            self.refit_right.len(),
            self.unchanged.len()
        )
    }
}

/// The result of one [`OnlineTrainer::commit`]: the batch-equivalent train
/// report plus the incremental bookkeeping. The model itself stays inside
/// the trainer ([`OnlineTrainer::model`]) and owns the fitted rooflines:
/// each commit moves its `r` refitted fits into the model in place, so
/// model upkeep is O(r) map writes with zero roofline clones.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The batch-equivalent train report.
    pub report: TrainReport,
    /// Thinning notices the current fits carry, in metric-name order.
    pub fit_notices: Vec<ThinningNotice>,
    /// What the commit actually recomputed.
    pub update: UpdateReport,
}

/// Streaming model maintenance; see the module docs for the invariants.
///
/// ```
/// use spire_core::{OnlineTrainer, Sample, SampleSet, SpireModel, TrainConfig, TrainStrictness};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut batch = SampleSet::new();
/// for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 2.0)] {
///     batch.push(Sample::new("stalls", 10.0, w, m)?);
/// }
/// let mut trainer = OnlineTrainer::new(TrainConfig::default(), TrainStrictness::Lenient)?;
/// trainer.push_batch(&batch);
/// trainer.commit()?;
/// // The incremental model equals a batch train over the same samples.
/// assert_eq!(
///     trainer.model().expect("committed"),
///     &SpireModel::train(&batch, TrainConfig::default())?
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    /// Every sample pushed so far, in batch arrival order per metric —
    /// identical to merging the batches into one set.
    samples: SampleSet,
    config: TrainConfig,
    strictness: TrainStrictness,
    slots: BTreeMap<MetricId, Slot>,
    /// Metrics that received samples since the last successful commit.
    touched: BTreeSet<MetricId>,
    /// Samples pushed since the last successful commit.
    pending: usize,
    /// The maintained model: rebuilt on the first successful commit, then
    /// patched in place (changed rooflines only) on every later one.
    model: Option<SpireModel>,
}

impl OnlineTrainer {
    /// Creates an empty trainer.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidConfig`] if `config` fails validation.
    pub fn new(config: TrainConfig, strictness: TrainStrictness) -> Result<Self> {
        config.validate()?;
        Ok(OnlineTrainer {
            samples: SampleSet::new(),
            config,
            strictness,
            slots: BTreeMap::new(),
            touched: BTreeSet::new(),
            pending: 0,
            model: None,
        })
    }

    /// Appends a batch of samples, classifying each against the maintained
    /// per-metric state. No fitting happens here; call
    /// [`OnlineTrainer::commit`] to refit the dirty metrics.
    pub fn push_batch(&mut self, batch: &SampleSet) {
        for (metric, column) in batch.by_metric() {
            if column.is_empty() {
                continue;
            }
            self.touched.insert(metric.clone());
            let slot = self
                .slots
                .entry(metric.clone())
                .or_insert_with(Slot::pending);
            classify_rows(slot, column.intensities(), column.throughputs());
        }
        self.pending += batch.len();
        self.samples.merge(batch.clone());
    }

    /// Refits every dirty metric and patches the maintained model
    /// ([`OnlineTrainer::model`]), which is bit-identical to
    /// [`SpireModel::train_with_report`] over all samples pushed so far.
    ///
    /// On error the trainer keeps its samples and dirty flags, so a later
    /// push-and-commit behaves like a batch retrain over the larger set.
    ///
    /// # Errors
    ///
    /// Exactly the batch trainer's: [`SpireError::EmptyTrainingSet`],
    /// per-metric fit errors in [`TrainStrictness::Strict`] mode, and
    /// [`SpireError::ErrorBudgetExceeded`] in lenient mode.
    pub fn commit(&mut self) -> Result<UpdateOutcome> {
        self.config.validate()?;
        if self.samples.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }

        // Phase 1: decide, for every metric, whether it is skipped, clean,
        // or needs a job — in by_metric (name) order, like the batch path.
        let mut skipped: Vec<MetricId> = Vec::new();
        let mut jobs: Vec<Job<'_>> = Vec::new();
        for (metric, column) in self.samples.by_metric() {
            if column.len() < self.config.min_samples_per_metric {
                skipped.push(metric.clone());
                continue;
            }
            let slot = self.slots.get(metric);
            let (class, kind) = match slot {
                Some(Slot {
                    status: SlotStatus::Trained,
                    dirty: Dirty::Clean,
                    ..
                }) => continue,
                Some(Slot {
                    status: SlotStatus::Quarantined(_),
                    dirty: Dirty::Clean,
                    ..
                }) => continue,
                Some(Slot {
                    status: SlotStatus::Trained,
                    dirty: Dirty::Right,
                    tracker:
                        Tracker::Fitted {
                            left,
                            front,
                            sums,
                            inf_height,
                            ..
                        },
                    ..
                }) => (
                    JobClass::Right,
                    JobKind::Right {
                        left,
                        front,
                        sums,
                        inf_height: *inf_height,
                        training_samples: column.len(),
                    },
                ),
                Some(Slot {
                    status: SlotStatus::Trained,
                    dirty: Dirty::Right,
                    tracker: Tracker::Constant { inf_height },
                    ..
                }) => (
                    JobClass::ConstantRaise,
                    JobKind::ConstantRaise {
                        height: *inf_height,
                        training_samples: column.len(),
                    },
                ),
                _ => (JobClass::Full, JobKind::Full { column }),
            };
            jobs.push(Job {
                metric: metric.clone(),
                class,
                kind,
            });
        }
        if jobs.is_empty()
            && self
                .slots
                .values()
                .all(|s| matches!(s.status, SlotStatus::Pending))
        {
            // Every metric fell below the minimum sample count: the batch
            // trainer reports an empty training set.
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }

        // Phase 2: run the jobs with per-metric panic containment, results
        // in job (metric-name) order — exactly the batch fan-out.
        let config = &self.config;
        let fitted = parallel::map_catching(&jobs, self.config.threads, |job| run_job(job, config));

        // Phase 3: flatten the three failure channels per metric, exactly
        // like the batch path, into staged slot updates.
        type Staged = (
            MetricId,
            JobClass,
            std::result::Result<
                (
                    PiecewiseRoofline,
                    Option<ThinningNotice>,
                    Option<FitArtifacts>,
                ),
                QuarantinedMetric,
            >,
        );
        let mut staged: Vec<Staged> = Vec::with_capacity(jobs.len());
        for (job, outcome) in jobs.iter().zip(fitted) {
            let metric = job.metric.clone();
            let checked: Result<_> = match outcome {
                Err(message) => Err(SpireError::FitPanicked {
                    metric: metric.to_string(),
                    message,
                }),
                Ok(Err(e)) => Err(e),
                Ok(Ok((fit, notice, artifacts))) => {
                    fit.validate().map(|()| (fit, notice, artifacts))
                }
            };
            match checked {
                Ok(ok) => staged.push((metric, job.class, Ok(ok))),
                Err(e) => {
                    if self.strictness == TrainStrictness::Strict {
                        return Err(e);
                    }
                    let reason = match &e {
                        SpireError::FitPanicked { .. } => TrainQuarantineReason::FitPanicked,
                        SpireError::ModelInvariantViolation { .. } => {
                            TrainQuarantineReason::InvariantViolation
                        }
                        _ => TrainQuarantineReason::FitFailed,
                    };
                    staged.push((
                        metric.clone(),
                        job.class,
                        Err(QuarantinedMetric {
                            metric,
                            reason,
                            detail: e.to_string(),
                        }),
                    ));
                }
            }
        }
        drop(jobs);

        // Phase 4: assemble the batch-equivalent report from staged results
        // plus untouched slots, and enforce the batch error ordering
        // (budget before the empty-ensemble check) WITHOUT mutating slots,
        // so a failed commit leaves the trainer retryable.
        let staged_map: BTreeMap<&MetricId, &Staged> = staged.iter().map(|s| (&s.0, s)).collect();
        let mut quarantined: Vec<QuarantinedMetric> = Vec::new();
        let mut metrics_trained = 0usize;
        for (metric, column) in self.samples.by_metric() {
            if column.len() < self.config.min_samples_per_metric {
                continue;
            }
            match staged_map.get(metric) {
                Some((_, _, Ok(_))) => metrics_trained += 1,
                Some((_, _, Err(q))) => quarantined.push(q.clone()),
                None => match self.slots.get(metric).map(|s| &s.status) {
                    Some(SlotStatus::Trained) => metrics_trained += 1,
                    Some(SlotStatus::Quarantined(q)) => quarantined.push(q.clone()),
                    _ => unreachable!("non-skipped metric without a job must have a settled slot"),
                },
            }
        }
        drop(staged_map);
        let report = TrainReport {
            metrics_seen: skipped.len() + metrics_trained + quarantined.len(),
            metrics_trained,
            metrics_skipped: skipped.len(),
            quarantined,
            error_budget: self.config.metric_error_budget,
        };
        if report.budget_exceeded() {
            return Err(SpireError::ErrorBudgetExceeded {
                quarantined: report.quarantined.len(),
                total: report.metrics_trained + report.quarantined.len(),
                budget: report.error_budget,
            });
        }
        if metrics_trained == 0 {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }

        // Phase 5: the commit succeeds — apply the staged updates. The
        // maintained model owns the fits: each staged roofline *moves*
        // into it below, so a commit that refits r of n metrics clones
        // zero rooflines and writes O(r) map entries.
        let mut update = UpdateReport {
            samples_added: self.pending,
            ..UpdateReport::default()
        };
        let mut moved: Vec<(MetricId, Option<PiecewiseRoofline>)> =
            Vec::with_capacity(staged.len());
        for (metric, class, result) in staged {
            match class {
                JobClass::Full => update.refit_full.push(metric.clone()),
                JobClass::Right | JobClass::ConstantRaise => {
                    update.refit_right.push(metric.clone())
                }
            }
            let slot = self.slots.get_mut(&metric).expect("job metrics have slots");
            match result {
                Ok((fit, notice, artifacts)) => {
                    slot.status = SlotStatus::Trained;
                    slot.notice = notice;
                    if let Some(artifacts) = artifacts {
                        slot.tracker = tracker_from_artifacts(artifacts);
                    }
                    moved.push((metric, Some(fit)));
                }
                Err(q) => {
                    slot.status = SlotStatus::Quarantined(q);
                    slot.tracker = Tracker::Opaque;
                    slot.notice = None;
                    moved.push((metric, None));
                }
            }
            slot.dirty = Dirty::Clean;
        }

        // Phase 6: maintain the model in place. On the first successful
        // commit every trained metric was staged this round (no slot was
        // Clean before it), so `moved` is the complete roofline set; later
        // commits only touch the refitted entries. Notices come from the
        // slots in metric-name order (the batch job order).
        let mut fit_notices = Vec::new();
        for slot in self.slots.values() {
            if matches!(slot.status, SlotStatus::Trained) {
                fit_notices.extend(slot.notice.clone());
            }
        }
        let model = match self.model.as_mut() {
            Some(model) => {
                model.set_skipped_metrics(skipped);
                model
            }
            None => self.model.insert(SpireModel::from_parts(
                BTreeMap::new(),
                self.config.clone(),
                skipped,
            )),
        };
        for (metric, fit) in moved {
            match fit {
                Some(fit) => {
                    model.rooflines_mut().insert(metric, fit);
                }
                None => {
                    model.rooflines_mut().remove(&metric);
                }
            }
        }
        // Touched-but-clean metrics: the fit is unchanged, but a batch
        // retrain would record the grown sample count. The refit lists are
        // in metric-name order, so membership is a binary search.
        for metric in &self.touched {
            if update.refit_full.binary_search(metric).is_ok()
                || update.refit_right.binary_search(metric).is_ok()
            {
                continue;
            }
            let Some(column) = self.samples.column(metric) else {
                continue;
            };
            if column.len() < self.config.min_samples_per_metric {
                continue;
            }
            if !matches!(
                self.slots.get(metric).map(|s| &s.status),
                Some(SlotStatus::Trained)
            ) {
                continue;
            }
            if let Some(fit) = model.rooflines_mut().get_mut(metric) {
                fit.set_training_samples(column.len());
                update.unchanged.push(metric.clone());
            }
        }

        self.touched.clear();
        self.pending = 0;
        Ok(UpdateOutcome {
            report,
            fit_notices,
            update,
        })
    }

    /// The maintained model — bit-identical to a batch retrain over every
    /// sample pushed so far. `None` until the first successful commit.
    pub fn model(&self) -> Option<&SpireModel> {
        self.model.as_ref()
    }

    /// Every sample pushed so far (the set a batch retrain would consume).
    pub fn samples(&self) -> &SampleSet {
        &self.samples
    }

    /// The configuration every commit trains with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Samples pushed since the last successful commit.
    pub fn pending_samples(&self) -> usize {
        self.pending
    }
}

/// Executes one refit job. Full jobs rerun the whole per-metric fit;
/// right/constant jobs rebuild only the parts the new samples changed,
/// bit-identically to the full fit on the same data.
fn run_job(
    job: &Job<'_>,
    config: &TrainConfig,
) -> Result<(
    PiecewiseRoofline,
    Option<ThinningNotice>,
    Option<FitArtifacts>,
)> {
    match &job.kind {
        JobKind::Full { column } => {
            let (fit, notice, artifacts) =
                PiecewiseRoofline::fit_column_seeded(column, &config.fit)?;
            Ok((fit, notice, Some(artifacts)))
        }
        JobKind::Right {
            left,
            front,
            sums,
            inf_height,
            training_samples,
        } => {
            let (fit, notice) = PiecewiseRoofline::refit_graph_right(
                job.metric.clone(),
                left,
                front,
                sums,
                *inf_height,
                *training_samples,
                &config.fit,
            );
            Ok((fit, notice, None))
        }
        JobKind::ConstantRaise {
            height,
            training_samples,
        } => Ok((
            PiecewiseRoofline::constant_roofline(job.metric.clone(), *height, *training_samples),
            None,
            None,
        )),
    }
}

/// Rebuilds a [`Tracker`] from the artifacts of a full fit.
fn tracker_from_artifacts(artifacts: FitArtifacts) -> Tracker {
    match artifacts {
        FitArtifacts::Constant { inf_height } => Tracker::Constant { inf_height },
        FitArtifacts::Graph {
            left,
            front,
            inf_height,
        } => {
            let apex = *left.last().expect("a hull always has an apex");
            let sums = PrefixSums::new(&front);
            Tracker::Fitted {
                left,
                apex,
                front,
                sums,
                inf_height,
            }
        }
        FitArtifacts::Opaque => Tracker::Opaque,
    }
}

/// Classifies one batch's rows for one metric against the maintained state,
/// escalating the slot's dirty flag and maintaining the front/heights.
///
/// Every branch that avoids `Full` is an *exact* no-op or an exact in-place
/// update (see the module docs); anything uncertain escalates.
fn classify_rows(slot: &mut Slot, intensities: &[f64], throughputs: &[f64]) {
    for (&x, &y) in intensities.iter().zip(throughputs) {
        if slot.dirty == Dirty::Full {
            // The tracker will be rebuilt from the refit; stop maintaining.
            return;
        }
        match &mut slot.tracker {
            Tracker::Opaque => {
                slot.dirty = Dirty::Full;
                return;
            }
            Tracker::Constant { inf_height } => {
                if x.is_finite() {
                    // The first finite-intensity sample turns a constant fit
                    // into a hull + front fit.
                    slot.dirty = Dirty::Full;
                    return;
                }
                // Non-finite intensity (∞ from M=0, or hostile NaN/−∞ rows
                // admitted by deserialization): the batch fit folds all of
                // them into the running maximum, which we replay exactly.
                let new = inf_height.max(y);
                if new.to_bits() != inf_height.to_bits() {
                    *inf_height = new;
                    slot.dirty = slot.dirty.max(Dirty::Right);
                }
            }
            Tracker::Fitted {
                apex,
                front,
                sums,
                inf_height,
                ..
            } => {
                if !x.is_finite() {
                    // Replay the batch fold over infinite-intensity rows.
                    let new = inf_height.map_or(y, |h| h.max(y));
                    let changed = match inf_height {
                        Some(h) => new.to_bits() != h.to_bits(),
                        None => true,
                    };
                    if changed {
                        *inf_height = Some(new);
                        slot.dirty = slot.dirty.max(Dirty::Right);
                    }
                    continue;
                }
                if !y.is_finite() {
                    // A finite-intensity row with a hostile throughput enters
                    // the hull machinery; refit rather than predict it.
                    slot.dirty = Dirty::Full;
                    return;
                }
                if y > apex.y || (y == apex.y && x > apex.x) {
                    // Lexicographically above the apex: the batch hull would
                    // pick a new apex, reshaping everything.
                    slot.dirty = Dirty::Full;
                    return;
                }
                if x <= apex.x {
                    // At or left of the apex: the sample could interact with
                    // the tolerance-based hull walk in ways no exact test
                    // predicts, so the clean/fast paths are not available.
                    slot.dirty = Dirty::Full;
                    return;
                }
                // Strictly right of the apex with y < apex.y: the hull and
                // apex are provably unchanged; only the Pareto front can
                // move. `front` is sorted by strictly descending x and
                // strictly increasing y.
                let j = front.partition_point(|q| q.x > x);
                let dominated = (j > 0 && front[j - 1].y >= y)
                    || (j < front.len() && front[j].x == x && front[j].y >= y);
                if !dominated {
                    // Remove the points the new sample dominates (a
                    // contiguous run at the insertion point) and splice it
                    // in; the result equals the batch Pareto sweep over the
                    // grown point set.
                    let mut end = j;
                    while end < front.len() && front[end].y <= y {
                        end += 1;
                    }
                    front.splice(j..end, [Point::new(x, y)]);
                    sums.patch(front, j);
                    slot.dirty = slot.dirty.max(Dirty::Right);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::TrainOutcome;
    use crate::Sample;

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    fn batch(rows: &[(&str, f64, f64, f64)]) -> SampleSet {
        rows.iter()
            .map(|&(metric, t, w, m)| s(metric, t, w, m))
            .collect()
    }

    fn batch_train(samples: &SampleSet, config: &TrainConfig) -> TrainOutcome {
        SpireModel::train_with_report(samples, config.clone(), TrainStrictness::Lenient).unwrap()
    }

    /// Asserts the online outcome is bit-identical to a batch retrain over
    /// the same samples.
    fn assert_matches_batch(
        trainer: &OnlineTrainer,
        outcome: &UpdateOutcome,
        samples: &SampleSet,
        config: &TrainConfig,
    ) {
        let expected = batch_train(samples, config);
        assert_eq!(trainer.model().expect("committed"), &expected.model);
        assert_eq!(outcome.report, expected.report);
        assert_eq!(outcome.fit_notices, expected.fit_notices);
    }

    #[test]
    fn first_commit_equals_batch_train() {
        let data = batch(&[
            ("stalls", 10.0, 10.0, 10.0),
            ("stalls", 10.0, 20.0, 5.0),
            ("stalls", 10.0, 30.0, 2.0),
            ("misses", 10.0, 12.0, 3.0),
            ("misses", 10.0, 24.0, 2.0),
        ]);
        let config = TrainConfig::default();
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        trainer.push_batch(&data);
        let outcome = trainer.commit().unwrap();
        assert_matches_batch(&trainer, &outcome, &data, &config);
        assert_eq!(outcome.update.refit_full.len(), 2);
        assert_eq!(outcome.update.samples_added, 5);
    }

    #[test]
    fn dominated_sample_is_exact_noop() {
        let config = TrainConfig::default();
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        let seed = batch(&[
            ("m", 10.0, 10.0, 10.0), // I 1,  P 1
            ("m", 10.0, 40.0, 10.0), // I 4,  P 4  (apex)
            ("m", 10.0, 60.0, 6.0),  // I 10, P 6? no: P = 6.0 -> apex is this
            ("m", 10.0, 30.0, 1.0),  // I 30, P 3
        ]);
        trainer.push_batch(&seed);
        trainer.commit().unwrap();

        // A sample right of the apex, below the front: exact no-op.
        let update = batch(&[("m", 10.0, 20.0, 1.0)]); // I 20, P 2 < front
        trainer.push_batch(&update);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.update.unchanged, vec![MetricId::new("m")]);
        assert!(outcome.update.refit_full.is_empty());
        assert!(outcome.update.refit_right.is_empty());

        let mut all = seed;
        all.merge(update);
        assert_matches_batch(&trainer, &outcome, &all, &config);
    }

    #[test]
    fn front_extending_sample_patches_right_region_only() {
        let config = TrainConfig::default();
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        let seed = batch(&[
            ("m", 10.0, 10.0, 10.0), // I 1,  P 1
            ("m", 10.0, 60.0, 10.0), // I 6,  P 6  (apex)
            ("m", 10.0, 30.0, 1.0),  // I 30, P 3
        ]);
        trainer.push_batch(&seed);
        trainer.commit().unwrap();

        // Right of the apex, above the existing front at that x.
        let update = batch(&[("m", 10.0, 40.0, 2.0)]); // I 20, P 4
        trainer.push_batch(&update);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.update.refit_right, vec![MetricId::new("m")]);
        assert!(outcome.update.refit_full.is_empty());

        let mut all = seed;
        all.merge(update);
        assert_matches_batch(&trainer, &outcome, &all, &config);
    }

    #[test]
    fn new_apex_forces_full_refit() {
        let config = TrainConfig::default();
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        let seed = batch(&[
            ("m", 10.0, 10.0, 10.0),
            ("m", 10.0, 40.0, 8.0),
            ("m", 10.0, 30.0, 2.0),
        ]);
        trainer.push_batch(&seed);
        trainer.commit().unwrap();

        let update = batch(&[("m", 10.0, 90.0, 10.0)]); // P 9: new apex
        trainer.push_batch(&update);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.update.refit_full, vec![MetricId::new("m")]);

        let mut all = seed;
        all.merge(update);
        assert_matches_batch(&trainer, &outcome, &all, &config);
    }

    #[test]
    fn constant_metric_raises_height_without_full_refit() {
        let config = TrainConfig::default();
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        // All-infinite-intensity metric (M = 0 throughout).
        let seed = batch(&[("c", 10.0, 10.0, 0.0), ("c", 10.0, 20.0, 0.0)]);
        trainer.push_batch(&seed);
        trainer.commit().unwrap();

        let update = batch(&[("c", 10.0, 30.0, 0.0)]); // higher constant
        trainer.push_batch(&update);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.update.refit_right, vec![MetricId::new("c")]);

        let mut all = seed;
        all.merge(update);
        assert_matches_batch(&trainer, &outcome, &all, &config);

        // A lower sample is an exact no-op (count patch only).
        let noop = batch(&[("c", 10.0, 5.0, 0.0)]);
        trainer.push_batch(&noop);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.update.unchanged, vec![MetricId::new("c")]);
        all.merge(noop);
        assert_matches_batch(&trainer, &outcome, &all, &config);
    }

    #[test]
    fn skipped_metric_promotes_once_it_reaches_minimum() {
        let config = TrainConfig {
            min_samples_per_metric: 3,
            ..TrainConfig::default()
        };
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        let seed = batch(&[
            ("big", 10.0, 10.0, 10.0),
            ("big", 10.0, 20.0, 5.0),
            ("big", 10.0, 30.0, 2.0),
            ("small", 10.0, 10.0, 5.0),
        ]);
        trainer.push_batch(&seed);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.report.metrics_skipped, 1);
        assert_matches_batch(&trainer, &outcome, &seed, &config);

        let update = batch(&[("small", 10.0, 20.0, 4.0), ("small", 10.0, 30.0, 2.0)]);
        trainer.push_batch(&update);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.report.metrics_skipped, 0);
        assert_eq!(outcome.update.refit_full, vec![MetricId::new("small")]);
        let mut all = seed;
        all.merge(update);
        assert_matches_batch(&trainer, &outcome, &all, &config);
    }

    #[test]
    fn interleaved_batches_match_one_batch_retrain() {
        let config = TrainConfig::default();
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        let mut all = SampleSet::new();
        for round in 0u32..6 {
            let mut b = SampleSet::new();
            for metric in 0..5 {
                for i in 0..8 {
                    let t = 10.0 + f64::from(i % 3);
                    let w = 5.0 + f64::from((i * (metric + 2) + round * 7) % 23);
                    let m = f64::from((i + round) % 5); // includes M = 0 rows
                    b.push(s(&format!("metric_{metric}"), t, w, m));
                }
            }
            trainer.push_batch(&b);
            let outcome = trainer.commit().unwrap();
            all.merge(b);
            assert_matches_batch(&trainer, &outcome, &all, &config);
        }
    }

    #[test]
    fn commit_without_samples_errors_like_batch() {
        let mut trainer =
            OnlineTrainer::new(TrainConfig::default(), TrainStrictness::Lenient).unwrap();
        assert!(matches!(
            trainer.commit().unwrap_err(),
            SpireError::EmptyTrainingSet { metric: None }
        ));
    }

    #[test]
    fn all_metrics_below_minimum_errors_like_batch() {
        let config = TrainConfig {
            min_samples_per_metric: 5,
            ..TrainConfig::default()
        };
        let mut trainer = OnlineTrainer::new(config, TrainStrictness::Lenient).unwrap();
        trainer.push_batch(&batch(&[("m", 10.0, 10.0, 1.0)]));
        assert!(matches!(
            trainer.commit().unwrap_err(),
            SpireError::EmptyTrainingSet { metric: None }
        ));
    }

    #[test]
    fn thinning_notices_survive_clean_commits() {
        let config = TrainConfig {
            fit: crate::FitOptions {
                thin_front: true,
                max_front_size: 8,
                ..crate::FitOptions::default()
            },
            ..TrainConfig::default()
        };
        let mut trainer = OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).unwrap();
        // A descending staircase wide enough to trigger thinning, built
        // with exact I/P control: I = w/m, P = w/t with t = 10.
        let mut seed = SampleSet::new();
        seed.push(s("m", 10.0, 10.0, 10.0));
        seed.push(s("m", 10.0, 100.0, 10.0));
        for i in 0..30 {
            let p: f64 = 9.5 - f64::from(i) * 0.25;
            let intensity = 12.0 + f64::from(i) * 2.0;
            let w = 10.0 * p;
            let m = w / intensity;
            seed.push(s("m", 10.0, w, m));
        }
        trainer.push_batch(&seed);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.fit_notices.len(), 1);
        assert_matches_batch(&trainer, &outcome, &seed, &config);

        // A dominated no-op keeps the stored notice (batch still thins).
        let noop = batch(&[("m", 10.0, 1.0, 0.02)]); // I 50, P 0.1
        trainer.push_batch(&noop);
        let outcome = trainer.commit().unwrap();
        assert_eq!(outcome.update.unchanged, vec![MetricId::new("m")]);
        assert_eq!(outcome.fit_notices.len(), 1);
        let mut all = seed;
        all.merge(noop);
        assert_matches_batch(&trainer, &outcome, &all, &config);
    }

    #[test]
    fn threads_do_not_change_the_result() {
        let mut all = SampleSet::new();
        for metric in 0..8 {
            for i in 0..20 {
                let w = 5.0 + ((i * (metric + 3)) % 17) as f64;
                let m = (i % 4) as f64;
                all.push(s(&format!("metric_{metric}"), 10.0, w, m));
            }
        }
        let serial_cfg = TrainConfig {
            threads: 1,
            ..TrainConfig::default()
        };
        let auto_cfg = TrainConfig {
            threads: 0,
            ..TrainConfig::default()
        };
        let mut serial = OnlineTrainer::new(serial_cfg, TrainStrictness::Lenient).unwrap();
        let mut auto = OnlineTrainer::new(auto_cfg, TrainStrictness::Lenient).unwrap();
        serial.push_batch(&all);
        auto.push_batch(&all);
        let a = serial.commit().unwrap();
        let b = auto.commit().unwrap();
        assert_eq!(
            serial.model().unwrap().rooflines(),
            auto.model().unwrap().rooflines()
        );
        assert_eq!(a.report, b.report);
    }
}
