//! The staged pipeline engine: one composable ingest → build → train →
//! estimate → analyze core shared by the CLI and the bench harness.
//!
//! Every stage is a [`Stage`] implementation threaded through a single
//! [`RunContext`], which owns the run's [`PipelineConfig`] and its
//! [`DiagnosticsBus`]. The bus replaces ad-hoc report threading: stages
//! emit typed [`Event`]s (stage start/finish with wall time and item
//! counts, quarantine decisions, salvage warnings, budget consumption)
//! into pluggable [`EventSink`]s — a [`CollectingSink`] for tests and the
//! CLI's renderers, a [`StderrSink`] for humans, a [`JsonLinesSink`] for
//! machines.
//!
//! The engine adds **no** computation of its own: stages call exactly the
//! library entry points the pre-pipeline callers used
//! ([`crate::SpireModel::train_with_report`], [`crate::snapshot::load_model`],
//! [`crate::SpireModel::estimate`], …), so models, snapshots, estimates and
//! rankings produced through the pipeline are bit-identical to direct API
//! calls — a guarantee locked by the `pipeline_equivalence` integration
//! test at the workspace root. See DESIGN.md §8 for the architecture.

pub mod event;
pub mod stages;

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::ensemble::{TrainConfig, TrainStrictness};
use crate::snapshot::SnapshotMode;

pub use event::{Event, Severity};
pub use stages::{
    AnalyzeStage, BuildStage, EstimateStage, LoadModelStage, TrainStage, UpdateStage,
};

/// Errors flowing out of pipeline stages. Stages wrap heterogeneous
/// failures (I/O, parse errors, [`crate::SpireError`]), so the engine uses
/// the widest practical type; typed spire errors pass through unwrapped
/// and can be downcast.
pub type StageError = Box<dyn std::error::Error + Send + Sync>;

/// Result alias for stage execution.
pub type StageResult<T> = Result<T, StageError>;

/// Ingest knobs mirrored into core so [`PipelineConfig`] can be a true
/// superset of every layer's configuration without a dependency cycle
/// (spire-counters depends on spire-core, not vice versa). The counters
/// crate's `IngestStage` converts these into its own `IngestConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSettings {
    /// Minimum multiplexing fraction a row needs to be trusted.
    pub min_running_frac: f64,
    /// Quarantined-row fraction tolerated before the ingest is declared
    /// over budget.
    pub error_budget: f64,
    /// Whether to scale multiplexed counts by `1/running_frac`.
    pub scale_multiplexed: bool,
}

impl Default for IngestSettings {
    fn default() -> Self {
        IngestSettings {
            min_running_frac: 0.05,
            error_budget: 0.5,
            scale_multiplexed: true,
        }
    }
}

/// The one configuration object a pipeline run carries: a superset of
/// [`TrainConfig`] / [`crate::FitOptions`] (via `train.fit`) and the
/// ingest knobs, plus run-wide policy (strictness, snapshot handling) and
/// the determinism seed.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Training configuration (includes fit options and thread count).
    pub train: TrainConfig,
    /// Lenient runs quarantine and continue; strict runs fail fast.
    /// Applies to training and to the ingest error budget.
    pub strictness: TrainStrictness,
    /// How snapshot loads treat damaged records.
    pub snapshot_mode: SnapshotMode,
    /// Ingest knobs, forwarded to the counters crate's `IngestStage`.
    pub ingest: IngestSettings,
    /// Workload-stream seed for stages that synthesize data.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            train: TrainConfig::default(),
            strictness: TrainStrictness::Lenient,
            snapshot_mode: SnapshotMode::Lenient,
            ingest: IngestSettings::default(),
            seed: 1,
        }
    }
}

/// A destination for diagnostics events. Sinks must be shareable across
/// the worker threads a stage may spawn.
pub trait EventSink: Send + Sync {
    /// Receives one event. Implementations must not panic.
    fn emit(&self, event: &Event);
}

/// A sink that stores every event, for tests and for renderers that
/// replay the stream after the run (the CLI's `--json` envelope).
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<Event>>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events collected so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }
}

impl EventSink for CollectingSink {
    fn emit(&self, event: &Event) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event.clone());
        }
    }
}

/// A human-readable sink writing one `spire: `-prefixed line per event to
/// stderr. [`StderrSink::warnings`] restricts it to noteworthy events
/// (warnings and worse), which is what the CLI attaches by default.
#[derive(Debug, Clone, Copy)]
pub struct StderrSink {
    min: Severity,
}

impl StderrSink {
    /// A sink that narrates every event (stage progress included).
    pub fn verbose() -> Self {
        StderrSink {
            min: Severity::Info,
        }
    }

    /// A sink that only surfaces warnings, degradations, and failures.
    pub fn warnings() -> Self {
        StderrSink {
            min: Severity::Warning,
        }
    }
}

fn severity_rank(s: Severity) -> u8 {
    match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Degraded => 2,
        Severity::Error => 3,
    }
}

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        if severity_rank(event.severity()) >= severity_rank(self.min) {
            eprintln!("spire: {}", event.render());
        }
    }
}

/// A machine-readable sink writing one compact JSON object per event
/// (JSON-lines) to any writer.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; each event becomes one `\n`-terminated JSON line.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the inner writer (tests read the buffer back).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<W: Write + Send> EventSink for JsonLinesSink<W> {
    fn emit(&self, event: &Event) {
        if let (Ok(line), Ok(mut w)) = (serde_json::to_string(event), self.writer.lock()) {
            let _ = writeln!(w, "{line}");
        }
    }
}

/// The diagnostics bus: fans events out to the attached sinks and tracks
/// whether any [`Severity::Degraded`] event was seen — the single source
/// of truth the CLI derives exit code 2 from.
#[derive(Default)]
pub struct DiagnosticsBus {
    sinks: Vec<Arc<dyn EventSink>>,
    degraded: AtomicBool,
}

impl std::fmt::Debug for DiagnosticsBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiagnosticsBus")
            .field("sinks", &self.sinks.len())
            .field("degraded", &self.degraded())
            .finish()
    }
}

impl DiagnosticsBus {
    /// An empty bus with no sinks (events still update the degraded flag).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a sink; every subsequent event is fanned out to it.
    pub fn add_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Emits one event to every sink and updates the degraded flag.
    pub fn emit(&self, event: Event) {
        if event.severity() == Severity::Degraded {
            self.degraded.store(true, Ordering::Relaxed);
        }
        for sink in &self.sinks {
            sink.emit(&event);
        }
    }

    /// Whether any degraded-severity event has been emitted.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// Everything a run threads through its stages: configuration, the
/// diagnostics bus, and the determinism seed (inside the config). One
/// `RunContext` is created per pipeline run and passed by mutable
/// reference down the stage chain — stages never own it.
#[derive(Debug)]
pub struct RunContext {
    /// The run's configuration.
    pub config: PipelineConfig,
    bus: DiagnosticsBus,
}

impl RunContext {
    /// A context over `config` with an empty bus.
    pub fn new(config: PipelineConfig) -> Self {
        RunContext {
            config,
            bus: DiagnosticsBus::new(),
        }
    }

    /// Builder-style sink attachment.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.bus.add_sink(sink);
        self
    }

    /// Attaches a sink to the bus.
    pub fn add_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.bus.add_sink(sink);
    }

    /// Emits one event on the bus.
    pub fn emit(&self, event: Event) {
        self.bus.emit(event);
    }

    /// Emits a free-form [`Event::Note`].
    pub fn note(&self, stage: &str, text: impl Into<String>) {
        self.emit(Event::Note {
            stage: stage.to_owned(),
            text: text.into(),
        });
    }

    /// Whether the run has degraded (exit-code-2 semantics).
    pub fn degraded(&self) -> bool {
        self.bus.degraded()
    }

    /// The underlying bus, for sharing with non-stage emitters.
    pub fn bus(&self) -> &DiagnosticsBus {
        &self.bus
    }
}

/// One typed pipeline stage: consumes `In`, produces `Out`, and reports
/// its decisions on the [`RunContext`]'s bus.
///
/// Implementations override [`Stage::run`]; the provided
/// [`Stage::execute`] wraps it with start/finish/failure instrumentation
/// (wall time and item counts), so every stage is observable without
/// writing any event plumbing.
pub trait Stage {
    /// Input type.
    type In;
    /// Output type.
    type Out;

    /// Stable stage name used in events (`ingest`, `train`, …).
    fn name(&self) -> &'static str;

    /// Input item count for instrumentation, when measurable.
    fn items_in(&self, _input: &Self::In) -> Option<usize> {
        None
    }

    /// Output item count for instrumentation, when measurable.
    fn items_out(&self, _output: &Self::Out) -> Option<usize> {
        None
    }

    /// The stage body.
    ///
    /// # Errors
    ///
    /// Implementation-specific; errors abort the pipeline run.
    fn run(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out>;

    /// Runs the stage with bus instrumentation: `StageStarted`, then
    /// `StageFinished` (wall time + item counts) or `StageFailed`.
    ///
    /// # Errors
    ///
    /// Propagates [`Stage::run`]'s error after emitting `StageFailed`.
    fn execute(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        let items_in = self.items_in(&input);
        ctx.emit(Event::StageStarted {
            stage: self.name().to_owned(),
            items_in,
        });
        let start = Instant::now();
        match self.run(input, ctx) {
            Ok(output) => {
                ctx.emit(Event::StageFinished {
                    stage: self.name().to_owned(),
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                    items_in,
                    items_out: self.items_out(&output),
                });
                Ok(output)
            }
            Err(error) => {
                ctx.emit(Event::StageFailed {
                    stage: self.name().to_owned(),
                    error: error.to_string(),
                });
                Err(error)
            }
        }
    }
}

/// Two stages run in sequence; built by [`Pipeline::then`]. `execute` is
/// overridden to instrument each half individually (no synthetic
/// chain-level events).
#[derive(Debug)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A, B> Stage for Chain<A, B>
where
    A: Stage,
    B: Stage<In = A::Out>,
{
    type In = A::In;
    type Out = B::Out;

    fn name(&self) -> &'static str {
        "chain"
    }

    fn run(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        let mid = self.first.execute(input, ctx)?;
        self.second.execute(mid, ctx)
    }

    fn execute(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        self.run(input, ctx)
    }
}

/// A composed pipeline: a stage (possibly a [`Chain`]) plus the runner
/// entry point.
///
/// ```
/// use std::sync::Arc;
/// use spire_core::pipeline::{
///     BuildStage, CollectingSink, Pipeline, PipelineConfig, RunContext, TrainStage,
/// };
/// use spire_core::{Sample, SampleSet};
///
/// # fn main() -> Result<(), spire_core::pipeline::StageError> {
/// let mut set = SampleSet::new();
/// for i in 1..6 {
///     set.push(Sample::new("m", 10.0, (5 * i) as f64, (10 - i) as f64)?);
/// }
/// let sink = Arc::new(CollectingSink::new());
/// let mut ctx = RunContext::new(PipelineConfig::default()).with_sink(sink.clone());
/// let outcome = Pipeline::new(BuildStage)
///     .then(TrainStage)
///     .run(vec![("wl".to_owned(), set)], &mut ctx)?;
/// assert_eq!(outcome.model.metric_count(), 1);
/// assert!(!sink.events().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pipeline<S> {
    stage: S,
}

impl<S: Stage> Pipeline<S> {
    /// Starts a pipeline from one stage.
    pub fn new(stage: S) -> Self {
        Pipeline { stage }
    }

    /// Appends a stage whose input is this pipeline's output.
    pub fn then<T: Stage<In = S::Out>>(self, next: T) -> Pipeline<Chain<S, T>> {
        Pipeline {
            stage: Chain {
                first: self.stage,
                second: next,
            },
        }
    }

    /// Runs the composed stages over `input`, threading `ctx` throughout.
    ///
    /// # Errors
    ///
    /// Returns the first stage error; a `StageFailed` event will have
    /// been emitted for it.
    pub fn run(&self, input: S::In, ctx: &mut RunContext) -> StageResult<S::Out> {
        self.stage.execute(input, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Stage for Doubler {
        type In = Vec<u32>;
        type Out = Vec<u32>;
        fn name(&self) -> &'static str {
            "double"
        }
        fn items_in(&self, input: &Vec<u32>) -> Option<usize> {
            Some(input.len())
        }
        fn items_out(&self, output: &Vec<u32>) -> Option<usize> {
            Some(output.len())
        }
        fn run(&self, input: Vec<u32>, _ctx: &mut RunContext) -> StageResult<Vec<u32>> {
            Ok(input.iter().map(|x| x * 2).collect())
        }
    }

    struct Failer;
    impl Stage for Failer {
        type In = Vec<u32>;
        type Out = Vec<u32>;
        fn name(&self) -> &'static str {
            "fail"
        }
        fn run(&self, _input: Vec<u32>, _ctx: &mut RunContext) -> StageResult<Vec<u32>> {
            Err("deliberate".into())
        }
    }

    #[test]
    fn execute_instruments_start_and_finish() {
        let sink = Arc::new(CollectingSink::new());
        let mut ctx = RunContext::new(PipelineConfig::default()).with_sink(sink.clone());
        let out = Pipeline::new(Doubler).run(vec![1, 2, 3], &mut ctx).unwrap();
        assert_eq!(out, [2, 4, 6]);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            Event::StageStarted { stage, items_in: Some(3) } if stage == "double"
        ));
        assert!(matches!(
            &events[1],
            Event::StageFinished { stage, items_out: Some(3), .. } if stage == "double"
        ));
        assert!(!ctx.degraded());
    }

    #[test]
    fn chained_stages_emit_per_stage_events_and_stop_on_failure() {
        let sink = Arc::new(CollectingSink::new());
        let mut ctx = RunContext::new(PipelineConfig::default()).with_sink(sink.clone());
        let err = Pipeline::new(Doubler)
            .then(Failer)
            .then(Doubler)
            .run(vec![1], &mut ctx)
            .unwrap_err();
        assert_eq!(err.to_string(), "deliberate");
        let kinds: Vec<&str> = sink.events().iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            [
                "stage_started",
                "stage_finished",
                "stage_started",
                "stage_failed"
            ],
            "the third stage must never start"
        );
    }

    #[test]
    fn degraded_events_flip_the_bus_flag() {
        let ctx = RunContext::new(PipelineConfig::default());
        assert!(!ctx.degraded());
        ctx.emit(Event::RowsQuarantined {
            reason: "unparseable".into(),
            rows: 1,
        });
        assert!(ctx.degraded());
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(&Event::Note {
            stage: "t".into(),
            text: "hello".into(),
        });
        sink.emit(&Event::RowsQuarantined {
            reason: "r".into(),
            rows: 2,
        });
        let buf = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = buf.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"note\""));
        assert!(lines[1].contains("\"rows\":2"));
    }
}
