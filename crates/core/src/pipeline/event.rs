//! The typed event taxonomy of the diagnostics bus.
//!
//! Every decision a pipeline stage makes that used to live only inside a
//! returned report struct — a quarantined metric, a salvaged snapshot
//! record, budget consumption — is mirrored as an [`Event`] so sinks can
//! observe a run without threading report types through every caller.

use serde::{Content, Serialize};

/// How an event affects the overall run outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Progress or bookkeeping; does not change the run outcome.
    Info,
    /// Noteworthy but non-degrading (e.g. lossy-but-requested thinning).
    Warning,
    /// The run completed by dropping or quarantining part of its input;
    /// maps to the CLI's exit code 2.
    Degraded,
    /// A stage failed outright; maps to the CLI's exit code 1.
    Error,
}

/// One structured diagnostics event emitted by a pipeline stage.
///
/// Field types are deliberately primitive (strings and numbers) so the
/// taxonomy serializes to a flat, stable JSON schema — see README
/// "Machine-readable output" — and sinks need no spire-core type
/// knowledge beyond this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A stage began executing.
    StageStarted {
        /// Stage name (`ingest`, `build`, `train`, `estimate`, `analyze`, …).
        stage: String,
        /// Input item count, when the stage can measure it.
        items_in: Option<usize>,
    },
    /// A stage finished successfully.
    StageFinished {
        /// Stage name.
        stage: String,
        /// Wall-clock time the stage took, in milliseconds.
        wall_ms: f64,
        /// Input item count, when measurable.
        items_in: Option<usize>,
        /// Output item count, when measurable.
        items_out: Option<usize>,
    },
    /// A stage returned an error; the pipeline stops here.
    StageFailed {
        /// Stage name.
        stage: String,
        /// The error's display text.
        error: String,
    },
    /// Training quarantined one metric instead of failing the run
    /// (mirrors [`crate::QuarantinedMetric`]).
    MetricQuarantined {
        /// The quarantined metric.
        metric: String,
        /// Machine-readable reason (`fit_panicked`, `fit_failed`,
        /// `invariant_violation`).
        reason: String,
        /// Human-readable detail from the underlying error.
        detail: String,
    },
    /// Ingest quarantined rows for one reason (mirrors one entry of
    /// `IngestReport::quarantined_by_reason`).
    RowsQuarantined {
        /// Machine-readable quarantine reason.
        reason: String,
        /// Number of rows quarantined for this reason.
        rows: usize,
    },
    /// A lenient binary column-file load quarantined one damaged data
    /// chunk (checksum mismatch or out-of-bounds range), dropping its
    /// rows.
    ChunkQuarantined {
        /// Dataset section (workload label) the chunk belonged to.
        label: String,
        /// Metric whose column lost rows.
        metric: String,
        /// Index of the chunk within its column.
        chunk: usize,
        /// Rows dropped with the chunk.
        rows: usize,
        /// Why the chunk was rejected.
        reason: String,
    },
    /// A lenient snapshot load dropped one damaged metric record.
    SnapshotRecordDropped {
        /// The dropped metric.
        metric: String,
        /// Why the record was unusable.
        reason: String,
    },
    /// A lenient snapshot load completed by dropping records.
    SnapshotSalvaged {
        /// Where the snapshot came from (path or description).
        source: String,
        /// Records dropped.
        dropped: usize,
        /// Records present in the snapshot.
        total: usize,
    },
    /// The capture that produced an ingested dataset was itself flagged
    /// as degraded (possibly incomplete).
    CaptureDegraded {
        /// Dataset label.
        label: String,
        /// Why the capture is suspect.
        reason: String,
    },
    /// How much of a stage's error budget a run consumed.
    BudgetConsumed {
        /// Stage name.
        stage: String,
        /// Fraction of the input quarantined (0.0–1.0).
        consumed: f64,
        /// The configured budget (0.0–1.0).
        budget: f64,
        /// Whether consumption exceeded the budget.
        exceeded: bool,
    },
    /// A Pareto front was lossily thinned before the right-region fit
    /// (only with `FitOptions::thin_front`).
    FrontThinned {
        /// The metric being fitted.
        metric: String,
        /// Front size before thinning.
        original: usize,
        /// Front size after thinning.
        retained: usize,
        /// The configured `max_front_size` cap.
        cap: usize,
    },
    /// An incremental update refitted one metric (mirrors one entry of
    /// [`crate::UpdateReport`]'s `refit_full`/`refit_right` lists).
    ModelRefit {
        /// The refitted metric.
        metric: String,
        /// Refit scope: `full` (complete refit from the metric's column)
        /// or `right` (patched right-region refit from the maintained
        /// Pareto front).
        mode: String,
    },
    /// An incremental update left one metric's model untouched because
    /// every new sample was dominated by the maintained Pareto front.
    ModelUnchanged {
        /// The unchanged metric.
        metric: String,
    },
    /// A serving-layer request was shed because its model's bounded queue
    /// was full (the backpressure alternative to silent drops).
    RequestShed {
        /// The model the request targeted.
        model: String,
        /// Queue depth at shed time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// A serving-layer request panicked and was contained at the request
    /// boundary (`parallel::run_catching`); the connection got a typed
    /// error and the worker kept running.
    RequestIsolated {
        /// Request kind (`estimate`, `analyze`, …) — named `request` so it
        /// does not collide with the JSON `kind` discriminator.
        request: String,
        /// The recovered panic message.
        detail: String,
    },
    /// A serving-layer model was hot-reloaded by atomic snapshot swap.
    ModelReloaded {
        /// The reloaded model's registry name.
        model: String,
        /// Snapshot fingerprint before the swap.
        old_fingerprint: String,
        /// Snapshot fingerprint after the swap.
        new_fingerprint: String,
    },
    /// A serving-layer model was advanced in place by a committed
    /// `update` batch — the write-side counterpart of
    /// [`Event::ModelReloaded`].
    ModelUpdated {
        /// The updated model's registry name.
        model: String,
        /// Journal sequence number of the committed record.
        seq: u64,
        /// Snapshot fingerprint before the update.
        old_fingerprint: String,
        /// Snapshot fingerprint after the update.
        new_fingerprint: String,
        /// Samples in the committed batch.
        samples: usize,
    },
    /// A retried `update` carried an idempotency key the server had
    /// already committed; it was acknowledged without being re-applied.
    UpdateDeduplicated {
        /// The targeted model.
        model: String,
        /// The journal sequence the original commit got.
        seq: u64,
        /// The caller-supplied idempotency key.
        key: String,
    },
    /// Journal replay found a torn or corrupt record at the tail and
    /// truncated the file back to the last whole record. Warning, not
    /// Degraded: a torn tail is a record the crash prevented from being
    /// acknowledged, so dropping it loses nothing a client was promised.
    WalTruncated {
        /// The model whose journal was repaired.
        model: String,
        /// Whole records that survived and were replayed.
        valid_records: usize,
        /// Bytes cut from the tail.
        dropped_bytes: u64,
    },
    /// The write-ahead journal was compacted: its records were folded
    /// into a checkpoint written atomically, then the journal reset.
    WalCompacted {
        /// The model whose journal was compacted.
        model: String,
        /// Highest sequence number covered by the checkpoint.
        seq: u64,
        /// Journal records folded into the checkpoint.
        records: usize,
    },
    /// A supervised serve worker panicked outside request containment
    /// and was respawned in place.
    WorkerRestarted {
        /// Worker index within the pool.
        worker: usize,
        /// Restarts consumed so far (this one included), pool-wide.
        restarts: u64,
        /// The configured restart budget.
        budget: u64,
        /// The recovered panic message.
        detail: String,
    },
    /// The worker restart budget is exhausted; the daemon stopped
    /// accepting writes/work it can no longer do instead of
    /// crash-looping.
    DaemonReadOnly {
        /// Why the daemon degraded.
        reason: String,
    },
    /// A model and a dataset carry provenance from different machines
    /// (differing [`MachineSpec`](crate::MachineSpec) fingerprints or
    /// normalization units). Lenient runs emit this and continue
    /// degraded; strict runs refuse with
    /// [`SpireError::MachineMismatch`](crate::SpireError).
    MachineMismatch {
        /// Which operation tripped the check (`estimate`, `analyze`,
        /// `update`).
        context: String,
        /// Name of the machine the model was trained on.
        model_machine: String,
        /// Config fingerprint of the model's machine.
        model_fingerprint: String,
        /// Name of the machine the data came from.
        data_machine: String,
        /// Config fingerprint of the data's machine.
        data_fingerprint: String,
    },
    /// Free-form progress text (the bench bins' narration).
    Note {
        /// Stage or context name.
        stage: String,
        /// The message.
        text: String,
    },
}

impl Event {
    /// Machine-readable discriminator, stable across releases (the
    /// `kind` field of the JSON encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StageStarted { .. } => "stage_started",
            Event::StageFinished { .. } => "stage_finished",
            Event::StageFailed { .. } => "stage_failed",
            Event::MetricQuarantined { .. } => "metric_quarantined",
            Event::RowsQuarantined { .. } => "rows_quarantined",
            Event::ChunkQuarantined { .. } => "chunk_quarantined",
            Event::SnapshotRecordDropped { .. } => "snapshot_record_dropped",
            Event::SnapshotSalvaged { .. } => "snapshot_salvaged",
            Event::CaptureDegraded { .. } => "capture_degraded",
            Event::BudgetConsumed { .. } => "budget_consumed",
            Event::FrontThinned { .. } => "front_thinned",
            Event::ModelRefit { .. } => "model_refit",
            Event::ModelUnchanged { .. } => "model_unchanged",
            Event::RequestShed { .. } => "request_shed",
            Event::RequestIsolated { .. } => "request_isolated",
            Event::ModelReloaded { .. } => "model_reloaded",
            Event::ModelUpdated { .. } => "model_updated",
            Event::UpdateDeduplicated { .. } => "update_deduplicated",
            Event::WalTruncated { .. } => "wal_truncated",
            Event::WalCompacted { .. } => "wal_compacted",
            Event::WorkerRestarted { .. } => "worker_restarted",
            Event::DaemonReadOnly { .. } => "daemon_read_only",
            Event::MachineMismatch { .. } => "machine_mismatch",
            Event::Note { .. } => "note",
        }
    }

    /// The event's severity; [`Severity::Degraded`] events flip the
    /// bus's degraded flag, which the CLI maps to exit code 2.
    pub fn severity(&self) -> Severity {
        match self {
            Event::StageFailed { .. } => Severity::Error,
            Event::MetricQuarantined { .. }
            | Event::RowsQuarantined { .. }
            | Event::ChunkQuarantined { .. }
            | Event::SnapshotRecordDropped { .. }
            | Event::SnapshotSalvaged { .. }
            | Event::CaptureDegraded { .. }
            | Event::RequestShed { .. }
            | Event::RequestIsolated { .. }
            | Event::WorkerRestarted { .. }
            | Event::DaemonReadOnly { .. }
            | Event::MachineMismatch { .. } => Severity::Degraded,
            Event::FrontThinned { .. } | Event::WalTruncated { .. } => Severity::Warning,
            Event::BudgetConsumed { exceeded, .. } => {
                if *exceeded {
                    Severity::Warning
                } else {
                    Severity::Info
                }
            }
            _ => Severity::Info,
        }
    }

    /// One human-readable line describing the event (the stderr sink's
    /// rendering, without a prefix).
    pub fn render(&self) -> String {
        match self {
            Event::StageStarted { stage, items_in } => match items_in {
                Some(n) => format!("stage {stage} started ({n} items)"),
                None => format!("stage {stage} started"),
            },
            Event::StageFinished {
                stage,
                wall_ms,
                items_out,
                ..
            } => match items_out {
                Some(n) => format!("stage {stage} finished in {wall_ms:.1} ms ({n} items out)"),
                None => format!("stage {stage} finished in {wall_ms:.1} ms"),
            },
            Event::StageFailed { stage, error } => format!("stage {stage} failed: {error}"),
            Event::MetricQuarantined {
                metric,
                reason,
                detail,
            } => format!("quarantined metric {metric} ({reason}): {detail}"),
            Event::RowsQuarantined { reason, rows } => {
                format!("quarantined {rows} rows: {reason}")
            }
            Event::ChunkQuarantined {
                label,
                metric,
                chunk,
                rows,
                reason,
            } => format!("quarantined chunk {chunk} of {label}/{metric} ({rows} rows): {reason}"),
            Event::SnapshotRecordDropped { metric, reason } => {
                format!("dropped snapshot record {metric}: {reason}")
            }
            Event::SnapshotSalvaged {
                source,
                dropped,
                total,
            } => format!("salvaged snapshot {source}: {dropped} of {total} metric records dropped"),
            Event::CaptureDegraded { label, reason } => {
                format!("capture {label} is degraded: {reason}")
            }
            Event::BudgetConsumed {
                stage,
                consumed,
                budget,
                exceeded,
            } => format!(
                "{stage} error budget: consumed {:.1}% of {:.1}%{}",
                consumed * 100.0,
                budget * 100.0,
                if *exceeded { " (EXCEEDED)" } else { "" }
            ),
            Event::FrontThinned {
                metric,
                original,
                retained,
                cap,
            } => format!(
                "thinning {metric} Pareto front from {original} to {retained} samples \
                 (thin_front enabled, max_front_size = {cap})"
            ),
            Event::ModelRefit { metric, mode } => {
                format!("refit metric {metric} ({mode})")
            }
            Event::ModelUnchanged { metric } => {
                format!("metric {metric} unchanged (all new samples dominated)")
            }
            Event::RequestShed {
                model,
                depth,
                capacity,
            } => format!("shed request for model {model}: queue full ({depth}/{capacity})"),
            Event::RequestIsolated { request, detail } => {
                format!("isolated panicking {request} request: {detail}")
            }
            Event::ModelReloaded {
                model,
                old_fingerprint,
                new_fingerprint,
            } => format!("reloaded model {model}: {old_fingerprint} -> {new_fingerprint}"),
            Event::ModelUpdated {
                model,
                seq,
                old_fingerprint,
                new_fingerprint,
                samples,
            } => format!(
                "updated model {model} (seq {seq}, {samples} samples): \
                 {old_fingerprint} -> {new_fingerprint}"
            ),
            Event::UpdateDeduplicated { model, seq, key } => {
                format!("deduplicated retried update for {model} (key {key}, seq {seq})")
            }
            Event::WalTruncated {
                model,
                valid_records,
                dropped_bytes,
            } => format!(
                "truncated torn journal tail for {model}: kept {valid_records} records, \
                 dropped {dropped_bytes} bytes"
            ),
            Event::WalCompacted {
                model,
                seq,
                records,
            } => format!("compacted journal for {model}: {records} records folded at seq {seq}"),
            Event::WorkerRestarted {
                worker,
                restarts,
                budget,
                detail,
            } => format!("restarted panicked worker {worker} ({restarts}/{budget}): {detail}"),
            Event::DaemonReadOnly { reason } => {
                format!("daemon degraded to read-only: {reason}")
            }
            Event::MachineMismatch {
                context,
                model_machine,
                model_fingerprint,
                data_machine,
                data_fingerprint,
            } => format!(
                "machine mismatch in {context}: model is from {model_machine} \
                 [{model_fingerprint}] but the data is from {data_machine} [{data_fingerprint}]"
            ),
            Event::Note { text, .. } => text.clone(),
        }
    }
}

fn field(key: &str, value: Content) -> (Content, Content) {
    (Content::Str(key.to_owned()), value)
}

fn opt_usize(v: &Option<usize>) -> Content {
    match v {
        Some(n) => Content::U64(*n as u64),
        None => Content::Null,
    }
}

/// Events serialize to a flat map with a `kind` discriminator plus the
/// variant's fields, so JSON-lines consumers can dispatch on one key.
impl Serialize for Event {
    fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = vec![field("kind", Content::Str(self.kind().to_owned()))];
        match self {
            Event::StageStarted { stage, items_in } => {
                entries.push(field("stage", Content::Str(stage.clone())));
                entries.push(field("items_in", opt_usize(items_in)));
            }
            Event::StageFinished {
                stage,
                wall_ms,
                items_in,
                items_out,
            } => {
                entries.push(field("stage", Content::Str(stage.clone())));
                entries.push(field("wall_ms", Content::F64(*wall_ms)));
                entries.push(field("items_in", opt_usize(items_in)));
                entries.push(field("items_out", opt_usize(items_out)));
            }
            Event::StageFailed { stage, error } => {
                entries.push(field("stage", Content::Str(stage.clone())));
                entries.push(field("error", Content::Str(error.clone())));
            }
            Event::MetricQuarantined {
                metric,
                reason,
                detail,
            } => {
                entries.push(field("metric", Content::Str(metric.clone())));
                entries.push(field("reason", Content::Str(reason.clone())));
                entries.push(field("detail", Content::Str(detail.clone())));
            }
            Event::RowsQuarantined { reason, rows } => {
                entries.push(field("reason", Content::Str(reason.clone())));
                entries.push(field("rows", Content::U64(*rows as u64)));
            }
            Event::ChunkQuarantined {
                label,
                metric,
                chunk,
                rows,
                reason,
            } => {
                entries.push(field("label", Content::Str(label.clone())));
                entries.push(field("metric", Content::Str(metric.clone())));
                entries.push(field("chunk", Content::U64(*chunk as u64)));
                entries.push(field("rows", Content::U64(*rows as u64)));
                entries.push(field("reason", Content::Str(reason.clone())));
            }
            Event::SnapshotRecordDropped { metric, reason } => {
                entries.push(field("metric", Content::Str(metric.clone())));
                entries.push(field("reason", Content::Str(reason.clone())));
            }
            Event::SnapshotSalvaged {
                source,
                dropped,
                total,
            } => {
                entries.push(field("source", Content::Str(source.clone())));
                entries.push(field("dropped", Content::U64(*dropped as u64)));
                entries.push(field("total", Content::U64(*total as u64)));
            }
            Event::CaptureDegraded { label, reason } => {
                entries.push(field("label", Content::Str(label.clone())));
                entries.push(field("reason", Content::Str(reason.clone())));
            }
            Event::BudgetConsumed {
                stage,
                consumed,
                budget,
                exceeded,
            } => {
                entries.push(field("stage", Content::Str(stage.clone())));
                entries.push(field("consumed", Content::F64(*consumed)));
                entries.push(field("budget", Content::F64(*budget)));
                entries.push(field("exceeded", Content::Bool(*exceeded)));
            }
            Event::FrontThinned {
                metric,
                original,
                retained,
                cap,
            } => {
                entries.push(field("metric", Content::Str(metric.clone())));
                entries.push(field("original", Content::U64(*original as u64)));
                entries.push(field("retained", Content::U64(*retained as u64)));
                entries.push(field("cap", Content::U64(*cap as u64)));
            }
            Event::ModelRefit { metric, mode } => {
                entries.push(field("metric", Content::Str(metric.clone())));
                entries.push(field("mode", Content::Str(mode.clone())));
            }
            Event::ModelUnchanged { metric } => {
                entries.push(field("metric", Content::Str(metric.clone())));
            }
            Event::RequestShed {
                model,
                depth,
                capacity,
            } => {
                entries.push(field("model", Content::Str(model.clone())));
                entries.push(field("depth", Content::U64(*depth as u64)));
                entries.push(field("capacity", Content::U64(*capacity as u64)));
            }
            Event::RequestIsolated { request, detail } => {
                entries.push(field("request", Content::Str(request.clone())));
                entries.push(field("detail", Content::Str(detail.clone())));
            }
            Event::ModelReloaded {
                model,
                old_fingerprint,
                new_fingerprint,
            } => {
                entries.push(field("model", Content::Str(model.clone())));
                entries.push(field(
                    "old_fingerprint",
                    Content::Str(old_fingerprint.clone()),
                ));
                entries.push(field(
                    "new_fingerprint",
                    Content::Str(new_fingerprint.clone()),
                ));
            }
            Event::ModelUpdated {
                model,
                seq,
                old_fingerprint,
                new_fingerprint,
                samples,
            } => {
                entries.push(field("model", Content::Str(model.clone())));
                entries.push(field("seq", Content::U64(*seq)));
                entries.push(field(
                    "old_fingerprint",
                    Content::Str(old_fingerprint.clone()),
                ));
                entries.push(field(
                    "new_fingerprint",
                    Content::Str(new_fingerprint.clone()),
                ));
                entries.push(field("samples", Content::U64(*samples as u64)));
            }
            Event::UpdateDeduplicated { model, seq, key } => {
                entries.push(field("model", Content::Str(model.clone())));
                entries.push(field("seq", Content::U64(*seq)));
                entries.push(field("key", Content::Str(key.clone())));
            }
            Event::WalTruncated {
                model,
                valid_records,
                dropped_bytes,
            } => {
                entries.push(field("model", Content::Str(model.clone())));
                entries.push(field("valid_records", Content::U64(*valid_records as u64)));
                entries.push(field("dropped_bytes", Content::U64(*dropped_bytes)));
            }
            Event::WalCompacted {
                model,
                seq,
                records,
            } => {
                entries.push(field("model", Content::Str(model.clone())));
                entries.push(field("seq", Content::U64(*seq)));
                entries.push(field("records", Content::U64(*records as u64)));
            }
            Event::WorkerRestarted {
                worker,
                restarts,
                budget,
                detail,
            } => {
                entries.push(field("worker", Content::U64(*worker as u64)));
                entries.push(field("restarts", Content::U64(*restarts)));
                entries.push(field("budget", Content::U64(*budget)));
                entries.push(field("detail", Content::Str(detail.clone())));
            }
            Event::DaemonReadOnly { reason } => {
                entries.push(field("reason", Content::Str(reason.clone())));
            }
            Event::MachineMismatch {
                context,
                model_machine,
                model_fingerprint,
                data_machine,
                data_fingerprint,
            } => {
                entries.push(field("context", Content::Str(context.clone())));
                entries.push(field("model_machine", Content::Str(model_machine.clone())));
                entries.push(field(
                    "model_fingerprint",
                    Content::Str(model_fingerprint.clone()),
                ));
                entries.push(field("data_machine", Content::Str(data_machine.clone())));
                entries.push(field(
                    "data_fingerprint",
                    Content::Str(data_fingerprint.clone()),
                ));
            }
            Event::Note { stage, text } => {
                entries.push(field("stage", Content::Str(stage.clone())));
                entries.push(field("text", Content::Str(text.clone())));
            }
        }
        serializer.serialize_content(Content::Map(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_severity_matches_exit_code_semantics() {
        assert_eq!(
            Event::MetricQuarantined {
                metric: "m".into(),
                reason: "fit_failed".into(),
                detail: "d".into(),
            }
            .severity(),
            Severity::Degraded
        );
        assert_eq!(
            Event::FrontThinned {
                metric: "m".into(),
                original: 10,
                retained: 5,
                cap: 5,
            }
            .severity(),
            Severity::Warning,
            "requested lossy thinning must not flip the degraded exit code"
        );
        assert_eq!(
            Event::StageFailed {
                stage: "train".into(),
                error: "boom".into(),
            }
            .severity(),
            Severity::Error
        );
        assert_eq!(
            Event::WorkerRestarted {
                worker: 0,
                restarts: 1,
                budget: 4,
                detail: "boom".into(),
            }
            .severity(),
            Severity::Degraded
        );
        assert_eq!(
            Event::DaemonReadOnly { reason: "r".into() }.severity(),
            Severity::Degraded
        );
        assert_eq!(
            Event::WalTruncated {
                model: "m".into(),
                valid_records: 3,
                dropped_bytes: 17,
            }
            .severity(),
            Severity::Warning,
            "a torn tail drops only unacknowledged work; it must not flip exit 2"
        );
        assert_eq!(
            Event::MachineMismatch {
                context: "analyze".into(),
                model_machine: "skylake-server".into(),
                model_fingerprint: "aaaa".into(),
                data_machine: "little".into(),
                data_fingerprint: "bbbb".into(),
            }
            .severity(),
            Severity::Degraded,
            "a lenient cross-machine run completes but must exit 2"
        );
    }

    #[test]
    fn machine_mismatch_serializes_both_fingerprints() {
        let json = serde_json::to_string(&Event::MachineMismatch {
            context: "estimate".into(),
            model_machine: "hpc".into(),
            model_fingerprint: "aaaa".into(),
            data_machine: "edge".into(),
            data_fingerprint: "bbbb".into(),
        })
        .unwrap();
        assert!(json.contains("\"kind\":\"machine_mismatch\""), "{json}");
        assert!(json.contains("\"model_fingerprint\":\"aaaa\""), "{json}");
        assert!(json.contains("\"data_fingerprint\":\"bbbb\""), "{json}");
    }

    #[test]
    fn events_serialize_with_a_kind_discriminator() {
        let json = serde_json::to_string(&Event::RowsQuarantined {
            reason: "not_counted".into(),
            rows: 3,
        })
        .unwrap();
        assert!(json.contains("\"kind\":\"rows_quarantined\""), "{json}");
        assert!(json.contains("\"rows\":3"), "{json}");
    }
}
