//! Core [`Stage`] implementations: SampleSet assembly, training, snapshot
//! loading, estimation, and bottleneck analysis. The ingest stage lives in
//! `spire-counters` (`spire_counters::pipeline::IngestStage`), which
//! depends on this crate.
//!
//! Every stage delegates to the same library entry point its pre-pipeline
//! caller used, so pipeline outputs are bit-identical to direct API calls;
//! the stages add only bus events.

use crate::analysis::BottleneckReport;
use crate::catalog::MetricCatalog;
use crate::ensemble::{SpireModel, TrainOutcome, TrainReport};
use crate::online::{OnlineTrainer, UpdateOutcome};
use crate::roofline::ThinningNotice;
use crate::sample::SampleSet;
use crate::snapshot::load_model;

use super::{Event, RunContext, Stage, StageResult};

/// Assembles one training [`SampleSet`] from labeled per-workload sets
/// (the pipeline's `Build` step). The merge order is the input order, so
/// feeding label-sorted entries (a `Dataset`'s natural iteration order)
/// reproduces `Dataset::merged` exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStage;

impl Stage for BuildStage {
    type In = Vec<(String, SampleSet)>;
    type Out = SampleSet;

    fn name(&self) -> &'static str {
        "build"
    }

    fn items_in(&self, input: &Self::In) -> Option<usize> {
        Some(input.len())
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        Some(output.len())
    }

    fn run(&self, input: Self::In, _ctx: &mut RunContext) -> StageResult<Self::Out> {
        let mut merged = SampleSet::new();
        for (_, set) in &input {
            merged.extend(set.iter());
        }
        Ok(merged)
    }
}

/// Emits the bus events implied by a finished training run: one
/// `MetricQuarantined` per quarantined metric, one `FrontThinned` per
/// lossy thinning decision, and a `BudgetConsumed` summary. Public so
/// tests (and custom training paths like the fault-injection harness) can
/// mirror any [`TrainReport`] onto a bus.
pub fn emit_train_events(report: &TrainReport, notices: &[ThinningNotice], ctx: &RunContext) {
    for q in &report.quarantined {
        ctx.emit(Event::MetricQuarantined {
            metric: q.metric.to_string(),
            reason: q.reason.as_str().to_owned(),
            detail: q.detail.clone(),
        });
    }
    for n in notices {
        ctx.emit(Event::FrontThinned {
            metric: n.metric.to_string(),
            original: n.original,
            retained: n.retained,
            cap: n.cap,
        });
    }
    ctx.emit(Event::BudgetConsumed {
        stage: "train".to_owned(),
        consumed: report.quarantined_fraction(),
        budget: report.error_budget,
        exceeded: report.budget_exceeded(),
    });
}

/// Fault-isolated training over the context's
/// [`TrainConfig`](crate::TrainConfig) and strictness; wraps
/// [`SpireModel::train_with_report`] and mirrors the resulting
/// [`TrainReport`] onto the bus.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainStage;

impl Stage for TrainStage {
    type In = SampleSet;
    type Out = TrainOutcome;

    fn name(&self) -> &'static str {
        "train"
    }

    fn items_in(&self, input: &Self::In) -> Option<usize> {
        Some(input.len())
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        Some(output.model.metric_count())
    }

    fn run(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        let outcome =
            SpireModel::train_with_report(&input, ctx.config.train.clone(), ctx.config.strictness)?;
        emit_train_events(&outcome.report, &outcome.fit_notices, ctx);
        Ok(outcome)
    }
}

/// Incremental model maintenance: feeds one sample batch into an
/// [`OnlineTrainer`] and commits, mirroring the resulting
/// [`UpdateReport`](crate::UpdateReport) onto the bus — one `ModelRefit`
/// per refitted metric (`mode` distinguishes full refits from patched
/// right-region refits), one `ModelUnchanged` per metric whose new
/// samples were all dominated, plus the usual train events (quarantines,
/// thinning, budget). The trainer threads through as part of the output
/// so callers can chain further batches.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateStage;

impl Stage for UpdateStage {
    type In = (OnlineTrainer, SampleSet);
    type Out = (OnlineTrainer, UpdateOutcome);

    fn name(&self) -> &'static str {
        "update"
    }

    fn items_in(&self, input: &Self::In) -> Option<usize> {
        Some(input.1.len())
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        output.0.model().map(SpireModel::metric_count)
    }

    fn run(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        let (mut trainer, batch) = input;
        trainer.push_batch(&batch);
        let outcome = trainer.commit()?;
        for metric in &outcome.update.refit_full {
            ctx.emit(Event::ModelRefit {
                metric: metric.to_string(),
                mode: "full".to_owned(),
            });
        }
        for metric in &outcome.update.refit_right {
            ctx.emit(Event::ModelRefit {
                metric: metric.to_string(),
                mode: "right".to_owned(),
            });
        }
        for metric in &outcome.update.unchanged {
            ctx.emit(Event::ModelUnchanged {
                metric: metric.to_string(),
            });
        }
        emit_train_events(&outcome.report, &outcome.fit_notices, ctx);
        Ok((trainer, outcome))
    }
}

/// Loads a model from snapshot (or legacy raw-model) JSON text in the
/// context's [`SnapshotMode`](crate::SnapshotMode), mirroring any salvage
/// onto the bus (`SnapshotSalvaged` plus one `SnapshotRecordDropped` per
/// dropped record). The caller supplies the text; file I/O stays at the
/// edges.
#[derive(Debug, Clone)]
pub struct LoadModelStage {
    /// Where the text came from (path or description), for events.
    pub source: String,
}

impl Stage for LoadModelStage {
    type In = String;
    type Out = SpireModel;

    fn name(&self) -> &'static str {
        "load-model"
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        Some(output.metric_count())
    }

    fn run(&self, input: Self::In, ctx: &mut RunContext) -> StageResult<Self::Out> {
        let (model, report) = load_model(&input, ctx.config.snapshot_mode)?;
        if let Some(report) = report {
            if report.is_degraded() {
                for d in &report.dropped {
                    ctx.emit(Event::SnapshotRecordDropped {
                        metric: d.metric.to_string(),
                        reason: d.reason.clone(),
                    });
                }
                ctx.emit(Event::SnapshotSalvaged {
                    source: self.source.clone(),
                    dropped: report.dropped.len(),
                    total: report.metrics_total,
                });
            }
        }
        Ok(model)
    }
}

/// Ensemble estimation of one workload under a trained model
/// ([`SpireModel::estimate`]).
#[derive(Debug)]
pub struct EstimateStage<'m> {
    /// The trained model to estimate under.
    pub model: &'m SpireModel,
}

impl Stage for EstimateStage<'_> {
    type In = SampleSet;
    type Out = crate::ensemble::Estimate;

    fn name(&self) -> &'static str {
        "estimate"
    }

    fn items_in(&self, input: &Self::In) -> Option<usize> {
        Some(input.len())
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        Some(output.per_metric().len())
    }

    fn run(&self, input: Self::In, _ctx: &mut RunContext) -> StageResult<Self::Out> {
        Ok(self.model.estimate(&input)?)
    }
}

/// Ranks an estimate into a [`BottleneckReport`] against a metric catalog.
#[derive(Debug, Clone)]
pub struct AnalyzeStage {
    /// The catalog used to annotate ranked metrics.
    pub catalog: MetricCatalog,
}

impl Default for AnalyzeStage {
    fn default() -> Self {
        AnalyzeStage {
            catalog: MetricCatalog::table_iii(),
        }
    }
}

impl Stage for AnalyzeStage {
    type In = crate::ensemble::Estimate;
    type Out = BottleneckReport;

    fn name(&self) -> &'static str {
        "analyze"
    }

    fn items_out(&self, output: &Self::Out) -> Option<usize> {
        Some(output.rows().len())
    }

    fn run(&self, input: Self::In, _ctx: &mut RunContext) -> StageResult<Self::Out> {
        Ok(BottleneckReport::new(&input, &self.catalog))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::super::{CollectingSink, Pipeline, PipelineConfig};
    use super::*;
    use crate::ensemble::{TrainConfig, TrainStrictness};
    use crate::error::SpireError;
    use crate::roofline::{FitOptions, PiecewiseRoofline};
    use crate::sample::Sample;
    use crate::snapshot::ModelSnapshot;

    fn training_set() -> SampleSet {
        let mut set = SampleSet::new();
        for m in ["m_alpha", "m_beta", "m_gamma"] {
            for i in 1..6 {
                set.push(Sample::new(m, 10.0, (5 * i) as f64, (10 - i) as f64).unwrap());
            }
        }
        set
    }

    fn ctx_with_sink() -> (super::super::RunContext, Arc<CollectingSink>) {
        let sink = Arc::new(CollectingSink::new());
        let ctx = super::super::RunContext::new(PipelineConfig::default()).with_sink(sink.clone());
        (ctx, sink)
    }

    #[test]
    fn build_stage_matches_dataset_merge_order() {
        let (mut ctx, _sink) = ctx_with_sink();
        let set = training_set();
        let merged = BuildStage
            .execute(vec![("wl".to_owned(), set.clone())], &mut ctx)
            .unwrap();
        assert_eq!(merged, set);
    }

    #[test]
    fn train_stage_output_is_bit_identical_to_direct_training() {
        let (mut ctx, _sink) = ctx_with_sink();
        let set = training_set();
        let outcome = Pipeline::new(BuildStage)
            .then(TrainStage)
            .run(vec![("wl".to_owned(), set.clone())], &mut ctx)
            .unwrap();
        let direct =
            SpireModel::train_with_report(&set, TrainConfig::default(), TrainStrictness::Lenient)
                .unwrap();
        assert_eq!(outcome.model, direct.model);
        assert_eq!(
            serde_json::to_string(&ModelSnapshot::from_model(&outcome.model).unwrap()).unwrap(),
            serde_json::to_string(&ModelSnapshot::from_model(&direct.model).unwrap()).unwrap()
        );
    }

    #[test]
    fn quarantine_decisions_appear_as_typed_events() {
        let (ctx, sink) = ctx_with_sink();
        // Drive a quarantine through the fault-injection seam: one metric's
        // fit always errs, the others train normally.
        let outcome = SpireModel::train_with_report_using(
            &training_set(),
            TrainConfig::default(),
            TrainStrictness::Lenient,
            |column, options| {
                if column.metric().as_str() == "m_beta" {
                    Err(SpireError::EmptyWorkload)
                } else {
                    PiecewiseRoofline::fit_column(column, options)
                }
            },
        )
        .unwrap();
        emit_train_events(&outcome.report, &outcome.fit_notices, &ctx);
        let events = sink.events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                Event::MetricQuarantined { metric, reason, .. }
                    if metric == "m_beta" && reason == "fit_failed"
            )),
            "{events:?}"
        );
        let budget = events
            .iter()
            .find(|e| matches!(e, Event::BudgetConsumed { .. }))
            .expect("budget event");
        if let Event::BudgetConsumed {
            consumed,
            budget,
            exceeded,
            ..
        } = budget
        {
            assert!((consumed - 1.0 / 3.0).abs() < 1e-12);
            assert_eq!(*budget, 0.5);
            assert!(!exceeded);
        }
        assert!(ctx.degraded(), "quarantine must flip the degraded flag");
    }

    #[test]
    fn front_thinning_surfaces_as_an_event_not_stderr() {
        let (ctx, sink) = ctx_with_sink();
        // A wide front: strictly decreasing throughput right of the apex.
        let mut set = SampleSet::new();
        for i in 0..40 {
            let intensity = 1.0 + i as f64;
            let throughput = 50.0 - i as f64;
            set.push(Sample::new("wide", 1.0, intensity * throughput, throughput).unwrap());
        }
        let config = TrainConfig {
            fit: FitOptions {
                thin_front: true,
                max_front_size: 8,
                ..FitOptions::default()
            },
            ..TrainConfig::default()
        };
        let outcome =
            SpireModel::train_with_report(&set, config, TrainStrictness::Lenient).unwrap();
        assert_eq!(outcome.fit_notices.len(), 1);
        emit_train_events(&outcome.report, &outcome.fit_notices, &ctx);
        assert!(
            sink.events().iter().any(|e| matches!(
                e,
                Event::FrontThinned { metric, retained: 8, cap: 8, .. } if metric == "wide"
            )),
            "{:?}",
            sink.events()
        );
        assert!(
            !ctx.degraded(),
            "requested thinning is a warning, not degradation"
        );
    }

    #[test]
    fn load_model_stage_mirrors_salvage_onto_the_bus() {
        let outcome = SpireModel::train_with_report(
            &training_set(),
            TrainConfig::default(),
            TrainStrictness::Strict,
        )
        .unwrap();
        let mut snapshot = ModelSnapshot::from_model(&outcome.model).unwrap();
        snapshot.metrics[0].checksum = "0000000000000000".to_owned();
        let text = snapshot.to_json();

        let (mut ctx, sink) = ctx_with_sink();
        let stage = LoadModelStage {
            source: "test.snapshot.json".to_owned(),
        };
        let model = stage.execute(text, &mut ctx).unwrap();
        assert_eq!(model.metric_count(), 2);
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::SnapshotRecordDropped { metric, .. } if metric == "m_alpha"
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::SnapshotSalvaged {
                dropped: 1,
                total: 3,
                ..
            }
        )));
        assert!(ctx.degraded());
    }

    #[test]
    fn update_stage_emits_refit_and_unchanged_events() {
        let (mut ctx, sink) = ctx_with_sink();
        let trainer = OnlineTrainer::new(TrainConfig::default(), TrainStrictness::Lenient).unwrap();

        // First batch: a metric with a multi-point Pareto front right of
        // the apex. Everything is a full refit (no prior model).
        let mut seed = SampleSet::new();
        for (w, m) in [(10.0, 10.0), (40.0, 10.0), (60.0, 6.0), (30.0, 1.0)] {
            seed.push(Sample::new("m_front", 10.0, w, m).unwrap());
        }
        let (trainer, outcome) = UpdateStage.execute((trainer, seed), &mut ctx).unwrap();
        assert_eq!(outcome.update.refit_full.len(), 1);
        assert!(
            sink.events().iter().any(|e| matches!(
                e,
                Event::ModelRefit { metric, mode } if metric == "m_front" && mode == "full"
            )),
            "{:?}",
            sink.events()
        );

        // Second batch: a sample right of the apex, strictly below the
        // front — an exact no-op, so the model is untouched.
        let mut dominated = SampleSet::new();
        dominated.push(Sample::new("m_front", 10.0, 20.0, 1.0).unwrap());
        let (_trainer, outcome) = UpdateStage.execute((trainer, dominated), &mut ctx).unwrap();
        assert!(outcome.update.refit_full.is_empty());
        assert!(outcome.update.refit_right.is_empty());
        assert_eq!(outcome.update.unchanged.len(), 1);
        assert!(
            sink.events().iter().any(|e| matches!(
                e,
                Event::ModelUnchanged { metric } if metric == "m_front"
            )),
            "{:?}",
            sink.events()
        );
        assert!(!ctx.degraded());
    }

    #[test]
    fn update_stage_result_matches_batch_training() {
        let (mut ctx, _sink) = ctx_with_sink();
        let trainer = OnlineTrainer::new(TrainConfig::default(), TrainStrictness::Lenient).unwrap();
        let set = training_set();
        let (half_a, half_b): (Vec<_>, Vec<_>) =
            set.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let mut batch_a = SampleSet::new();
        batch_a.extend(half_a.into_iter().map(|(_, s)| s));
        let mut batch_b = SampleSet::new();
        batch_b.extend(half_b.into_iter().map(|(_, s)| s));

        let mut concatenated = SampleSet::new();
        concatenated.extend(batch_a.iter());
        concatenated.extend(batch_b.iter());

        let (trainer, _) = UpdateStage.execute((trainer, batch_a), &mut ctx).unwrap();
        let (trainer, _) = UpdateStage.execute((trainer, batch_b), &mut ctx).unwrap();
        let direct = SpireModel::train_with_report(
            &concatenated,
            TrainConfig::default(),
            TrainStrictness::Lenient,
        )
        .unwrap();
        assert_eq!(trainer.model().expect("committed"), &direct.model);
    }

    #[test]
    fn estimate_and_analyze_stages_match_direct_calls() {
        let set = training_set();
        let model = SpireModel::train(&set, TrainConfig::default()).unwrap();
        let (mut ctx, _sink) = ctx_with_sink();
        let report = Pipeline::new(EstimateStage { model: &model })
            .then(AnalyzeStage::default())
            .run(set.clone(), &mut ctx)
            .unwrap();
        let direct =
            BottleneckReport::new(&model.estimate(&set).unwrap(), &MetricCatalog::table_iii());
        assert_eq!(report, direct);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
    }
}
