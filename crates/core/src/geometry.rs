//! Plane geometry used by the roofline fitting algorithms: the Jarvis-march
//! upper-hull walk (paper Fig. 5) and the Pareto front (paper Fig. 6).
//!
//! Points live in the `(intensity, throughput)` plane. Non-finite
//! coordinates are skipped by every algorithm here; infinite-intensity
//! samples are handled at the fitting layer before geometry is invoked.
//!
//! Each algorithm has two entry points: a struct-of-arrays form taking
//! parallel `xs`/`ys` slices (`*_soa`), which is what the columnar
//! [`MetricColumn`](crate::MetricColumn) fit path feeds directly, and an
//! array-of-structs form over `&[Point]` for callers that already hold
//! materialized points. The SoA form is the primary implementation.

use serde::{Deserialize, Serialize};

/// A point in the `(intensity, throughput)` plane.
///
/// `x` is a metric-specific operational intensity `I_x`; `y` is a throughput
/// `P`. Both must be finite and non-negative for the algorithms in this
/// module.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Operational intensity coordinate.
    pub x: f64,
    /// Throughput coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Slope of the line from `self` to `other`.
    ///
    /// Returns `f64::INFINITY` / `f64::NEG_INFINITY` for vertical pairs and
    /// `NAN` for coincident points; callers filter those cases.
    pub fn slope_to(&self, other: &Point) -> f64 {
        (other.y - self.y) / (other.x - self.x)
    }
}

/// Comparison tolerance used throughout the fitting algorithms.
///
/// Measurement data is noisy and fits only need to hold up to floating-point
/// round-off; a relative epsilon of this magnitude keeps the "on or above"
/// constraints from being violated by the last bit of a subtraction.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a >= b` up to a relative tolerance of [`EPS`].
pub(crate) fn ge_approx(a: f64, b: f64) -> bool {
    a >= b - EPS * (1.0 + a.abs().max(b.abs()))
}

/// Returns `true` when two x-coordinates are close enough that a chord
/// between them has no numerically meaningful slope, using the same
/// relative tolerance as [`EPS`].
///
/// This replaces an absolute `< f64::MIN_POSITIVE` guard that only caught
/// exact zeros and denormals: near-duplicate intensities (samples whose
/// `x` differ only in the last few bits) produce slopes of magnitude
/// `~1/Δx` and catastrophic cancellation in chord interpolation, so the
/// fitting layer treats such pairs as a vertical stack instead.
pub(crate) fn approx_coincident_x(xa: f64, xb: f64) -> bool {
    (xb - xa).abs() <= EPS * (1.0 + xa.abs().max(xb.abs()))
}

/// Computes the increasing, concave-down upper hull from the origin to the
/// highest-throughput point (the paper's left-region fit, Fig. 5).
///
/// Starting at the origin, the walk repeatedly moves to the point with the
/// greatest slope from the current position among points strictly to the
/// right, until the maximum-throughput point is reached. The returned knot
/// sequence starts at [`Point::ORIGIN`] and ends at the apex; consecutive
/// knots have strictly increasing `x` and non-decreasing `y`, and the
/// piecewise-linear function through them lies on or above every input
/// point with `x` at most the apex's `x`.
///
/// Points with non-finite coordinates are ignored. If `points` is empty (or
/// contains no finite points), only the origin is returned.
///
/// Ties in slope are broken toward the farther point, which minimizes the
/// number of knots for collinear runs.
pub fn upper_hull_from_origin(points: &[Point]) -> Vec<Point> {
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    upper_hull_from_origin_soa(&xs, &ys)
}

/// Struct-of-arrays form of [`upper_hull_from_origin`]: `xs[i]`/`ys[i]`
/// are the coordinates of point `i`. Pairs with a non-finite coordinate
/// are skipped, so an intensity column containing `I_x = ∞` rows can be
/// passed directly.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn upper_hull_from_origin_soa(xs: &[f64], ys: &[f64]) -> Vec<Point> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must be parallel columns");
    let mut pts: Vec<Point> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| Point::new(x, y))
        .collect();
    // Canonicalize before walking: the slope tie-break below is tolerant
    // (EPS-approximate), and approximate equality is not transitive, so the
    // winner among near-tied candidates could otherwise depend on input
    // order. Sorting into a total order (and collapsing exact duplicates,
    // which duplicate-intensity samples produce) makes the hull a function
    // of the point *set* rather than the sample sequence.
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let mut hull = vec![Point::ORIGIN];
    if pts.is_empty() {
        return hull;
    }
    // The walk terminates at the apex: the maximum-throughput point
    // (ties broken toward larger x so the hull spans the data).
    let apex = pts
        .iter()
        .copied()
        .reduce(|a, b| if (b.y, b.x) > (a.y, a.x) { b } else { a })
        .expect("non-empty");
    if apex.y <= 0.0 {
        // All throughputs are zero: the hull degenerates to the origin plus
        // the farthest zero-height point so the span is still covered.
        if apex.x > 0.0 {
            hull.push(apex);
        }
        return hull;
    }

    let mut current = Point::ORIGIN;
    loop {
        if current == apex {
            break;
        }
        // Candidates strictly to the right of the current knot, limited to
        // the left region (x <= apex.x): points beyond the apex belong to
        // the right-region fit.
        let mut best: Option<(f64, Point)> = None;
        for &p in &pts {
            if p.x <= current.x + EPS * (1.0 + current.x.abs()) || p.x > apex.x {
                continue;
            }
            let slope = current.slope_to(&p);
            match best {
                None => best = Some((slope, p)),
                Some((bs, bp)) => {
                    let tol = EPS * (1.0 + bs.abs());
                    if slope > bs + tol || ((slope - bs).abs() <= tol && p.x > bp.x) {
                        best = Some((slope, p));
                    }
                }
            }
        }
        match best {
            Some((_, p)) => {
                hull.push(p);
                current = p;
                if (current.x - apex.x).abs() <= EPS * (1.0 + apex.x.abs()) {
                    // Reached the apex column; the max-slope choice at the
                    // apex's x is the apex itself (it has the max y).
                    break;
                }
            }
            None => break,
        }
    }
    hull
}

/// Computes the Pareto front of `points` under joint maximization of `x`
/// and `y` (paper Fig. 6, step 1).
///
/// A point is on the front if no other point has both `x >=` and `y >=` it
/// (with at least one strict). The result is sorted by **decreasing `x`**
/// (and therefore strictly increasing `y`), matching the right-region
/// fitting order `q1 (rightmost) .. qk (leftmost, highest)`. Duplicate
/// points are collapsed to one representative.
pub fn pareto_front(points: &[Point]) -> Vec<Point> {
    let pts: Vec<Point> = points
        .iter()
        .copied()
        .filter(|p| p.x.is_finite() && p.y.is_finite())
        .collect();
    pareto_front_of(pts)
}

/// Struct-of-arrays form of [`pareto_front`]: `xs[i]`/`ys[i]` are the
/// coordinates of point `i`. Pairs with a non-finite coordinate are
/// skipped.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pareto_front_soa(xs: &[f64], ys: &[f64]) -> Vec<Point> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must be parallel columns");
    let pts: Vec<Point> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| Point::new(x, y))
        .collect();
    pareto_front_of(pts)
}

fn pareto_front_of(mut pts: Vec<Point>) -> Vec<Point> {
    if pts.is_empty() {
        return Vec::new();
    }
    // Sort by decreasing x; for equal x keep the highest y first. The
    // total order (rather than `partial_cmp().unwrap()`) keeps the kernel
    // deterministic — and panic-free — for any input permutation, including
    // duplicate-intensity ties.
    pts.sort_by(|a, b| b.x.total_cmp(&a.x).then(b.y.total_cmp(&a.y)));
    let mut front: Vec<Point> = Vec::new();
    let mut best_y = f64::NEG_INFINITY;
    for p in pts {
        if p.y > best_y {
            front.push(p);
            best_y = p.y;
        }
    }
    front
}

/// Evaluates the piecewise-linear function through `knots` (ascending `x`)
/// at `x`, clamping to the end values outside the knot range.
///
/// # Panics
///
/// Panics if `knots` is empty.
pub fn piecewise_eval(knots: &[Point], x: f64) -> f64 {
    assert!(
        !knots.is_empty(),
        "piecewise_eval requires at least one knot"
    );
    if x <= knots[0].x {
        return knots[0].y;
    }
    if x >= knots[knots.len() - 1].x {
        return knots[knots.len() - 1].y;
    }
    // Binary search for the segment containing x.
    let mut lo = 0;
    let mut hi = knots.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if knots[mid].x <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (a, b) = (knots[lo], knots[hi]);
    if b.x == a.x {
        return a.y.max(b.y);
    }
    a.y + (x - a.x) * (b.y - a.y) / (b.x - a.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn hull_of_single_point_is_origin_to_point() {
        let hull = upper_hull_from_origin(&[p(2.0, 3.0)]);
        assert_eq!(hull, vec![Point::ORIGIN, p(2.0, 3.0)]);
    }

    #[test]
    fn hull_walks_by_max_slope() {
        // Mirrors the paper's Fig. 5 shape: several points, the hull picks
        // the steepest first, then flattens toward the apex.
        let pts = [
            p(1.0, 2.0),
            p(2.0, 3.0),
            p(3.0, 3.5),
            p(1.5, 1.0),
            p(2.5, 2.0),
        ];
        let hull = upper_hull_from_origin(&pts);
        assert_eq!(
            hull,
            vec![Point::ORIGIN, p(1.0, 2.0), p(2.0, 3.0), p(3.0, 3.5)]
        );
    }

    #[test]
    fn hull_lies_on_or_above_all_left_points() {
        let pts = [
            p(0.5, 0.4),
            p(1.0, 2.0),
            p(1.2, 0.3),
            p(2.0, 2.5),
            p(2.7, 2.9),
            p(3.0, 3.0),
        ];
        let hull = upper_hull_from_origin(&pts);
        for q in &pts {
            let v = piecewise_eval(&hull, q.x);
            assert!(
                ge_approx(v, q.y),
                "hull({}) = {} below sample {}",
                q.x,
                v,
                q.y
            );
        }
    }

    #[test]
    fn hull_slopes_are_nonincreasing() {
        let pts = [p(1.0, 3.0), p(2.0, 4.0), p(4.0, 5.0), p(3.0, 4.2)];
        let hull = upper_hull_from_origin(&pts);
        let slopes: Vec<f64> = hull.windows(2).map(|w| w[0].slope_to(&w[1])).collect();
        for w in slopes.windows(2) {
            assert!(
                w[1] <= w[0] + EPS,
                "slopes must be non-increasing: {slopes:?}"
            );
        }
    }

    #[test]
    fn hull_ignores_points_right_of_apex() {
        // The point at x=10 has lower y than the apex at x=3; it belongs to
        // the right region and must not drag the hull past the apex.
        let pts = [p(3.0, 5.0), p(10.0, 2.0), p(1.0, 2.0)];
        let hull = upper_hull_from_origin(&pts);
        assert_eq!(*hull.last().unwrap(), p(3.0, 5.0));
    }

    #[test]
    fn hull_with_collinear_points_skips_interior() {
        let pts = [p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)];
        let hull = upper_hull_from_origin(&pts);
        assert_eq!(hull, vec![Point::ORIGIN, p(3.0, 3.0)]);
    }

    #[test]
    fn hull_of_empty_input_is_origin_only() {
        assert_eq!(upper_hull_from_origin(&[]), vec![Point::ORIGIN]);
    }

    #[test]
    fn hull_all_zero_throughput() {
        let hull = upper_hull_from_origin(&[p(1.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(hull, vec![Point::ORIGIN, p(2.0, 0.0)]);
    }

    #[test]
    fn pareto_front_orders_by_decreasing_x() {
        // The paper's Fig. 6 setting: A..E with A rightmost/lowest and E
        // leftmost/highest.
        let a = p(10.0, 1.0);
        let b = p(8.0, 2.0);
        let c = p(6.0, 3.0);
        let d = p(4.0, 4.0);
        let e = p(2.0, 5.0);
        let dominated = p(5.0, 2.5);
        let front = pareto_front(&[c, dominated, e, a, d, b]);
        assert_eq!(front, vec![a, b, c, d, e]);
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let front = pareto_front(&[p(1.0, 1.0), p(2.0, 2.0), p(0.5, 0.5)]);
        assert_eq!(front, vec![p(2.0, 2.0)]);
    }

    #[test]
    fn pareto_front_handles_equal_x() {
        let front = pareto_front(&[p(2.0, 1.0), p(2.0, 3.0), p(1.0, 4.0)]);
        assert_eq!(front, vec![p(2.0, 3.0), p(1.0, 4.0)]);
    }

    #[test]
    fn pareto_front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn soa_forms_match_point_forms() {
        let pts = [
            p(0.5, 0.4),
            p(1.0, 2.0),
            p(f64::INFINITY, 3.0),
            p(2.0, 2.5),
            p(2.7, 2.9),
            p(3.0, 3.0),
            p(4.0, 1.0),
        ];
        let xs: Vec<f64> = pts.iter().map(|q| q.x).collect();
        let ys: Vec<f64> = pts.iter().map(|q| q.y).collect();
        assert_eq!(
            upper_hull_from_origin(&pts),
            upper_hull_from_origin_soa(&xs, &ys)
        );
        assert_eq!(pareto_front(&pts), pareto_front_soa(&xs, &ys));
    }

    #[test]
    #[should_panic(expected = "parallel columns")]
    fn soa_length_mismatch_panics() {
        upper_hull_from_origin_soa(&[1.0, 2.0], &[1.0]);
    }

    /// Deterministic permutations of a slice (rotations + reversal) —
    /// enough to expose order-dependent tie-breaking without needing an
    /// RNG in a unit test.
    fn permutations(pts: &[Point]) -> Vec<Vec<Point>> {
        let mut all = Vec::new();
        for k in 0..pts.len() {
            let mut rot: Vec<Point> = pts[k..].iter().chain(&pts[..k]).copied().collect();
            all.push(rot.clone());
            rot.reverse();
            all.push(rot);
        }
        all
    }

    #[test]
    fn hull_is_independent_of_input_order_with_duplicates() {
        // Duplicate intensities (equal x, differing y), exact duplicate
        // points, and a near-collinear run that exercises the approximate
        // slope tie-break.
        let pts = [
            p(1.0, 2.0),
            p(1.0, 2.0),
            p(1.0, 1.5),
            p(2.0, 4.0),
            p(2.0, 3.999999999),
            p(3.0, 5.9999999995),
            p(3.0, 6.0),
            p(4.0, 6.5),
        ];
        let reference = upper_hull_from_origin(&pts);
        for perm in permutations(&pts) {
            assert_eq!(
                upper_hull_from_origin(&perm),
                reference,
                "hull must not depend on sample order"
            );
        }
    }

    #[test]
    fn pareto_front_is_independent_of_input_order_with_duplicates() {
        let pts = [
            p(10.0, 1.0),
            p(10.0, 1.0),
            p(10.0, 0.5),
            p(8.0, 2.0),
            p(8.0, 2.0),
            p(6.0, 2.0),
            p(4.0, 4.0),
        ];
        let reference = pareto_front(&pts);
        for perm in permutations(&pts) {
            assert_eq!(
                pareto_front(&perm),
                reference,
                "front must not depend on sample order"
            );
        }
    }

    #[test]
    fn kernels_skip_zero_time_infinities_deterministically() {
        // Zero-time samples surface here as infinite throughput (w / 0);
        // zero-delta samples as infinite intensity. Both must be skipped,
        // in every input order.
        let pts = [
            p(1.0, f64::INFINITY),
            p(f64::INFINITY, 2.0),
            p(1.0, f64::NAN),
            p(2.0, 3.0),
            p(1.0, 2.0),
        ];
        let reference_hull = upper_hull_from_origin(&pts);
        let reference_front = pareto_front(&pts);
        assert_eq!(
            reference_hull,
            vec![Point::ORIGIN, p(1.0, 2.0), p(2.0, 3.0)]
        );
        for perm in permutations(&pts) {
            assert_eq!(upper_hull_from_origin(&perm), reference_hull);
            assert_eq!(pareto_front(&perm), reference_front);
        }
    }

    #[test]
    fn approx_coincident_x_uses_relative_tolerance() {
        // Exact zero and denormal gaps (the old absolute guard's range).
        assert!(approx_coincident_x(10.0, 10.0));
        assert!(approx_coincident_x(10.0, 10.0 + f64::MIN_POSITIVE));
        // Last-bits gaps at ordinary magnitudes, invisible to an absolute
        // `< f64::MIN_POSITIVE` test.
        assert!(approx_coincident_x(10.0, 10.0 + 1e-10));
        assert!(approx_coincident_x(1e6, 1e6 + 1e-4));
        // Genuine gaps stay distinct, including near zero.
        assert!(!approx_coincident_x(10.0, 10.1));
        assert!(!approx_coincident_x(0.0, 1e-6));
    }

    #[test]
    fn piecewise_eval_interpolates_and_clamps() {
        let knots = [p(0.0, 0.0), p(2.0, 4.0), p(4.0, 5.0)];
        assert_eq!(piecewise_eval(&knots, -1.0), 0.0);
        assert_eq!(piecewise_eval(&knots, 1.0), 2.0);
        assert_eq!(piecewise_eval(&knots, 3.0), 4.5);
        assert_eq!(piecewise_eval(&knots, 9.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one knot")]
    fn piecewise_eval_empty_panics() {
        piecewise_eval(&[], 1.0);
    }
}
