//! # spire-core
//!
//! An implementation of **SPIRE** (*Statistical Piecewise Linear Roofline
//! Ensemble*), the performance model of Wendt, Ketkar and Bertacco,
//! "SPIRE: Inferring Hardware Bottlenecks from Performance Counter Data"
//! (DATE 2025).
//!
//! SPIRE estimates the maximum throughput a workload can attain on a
//! processor from hardware performance-counter data, and ranks counters by
//! how likely each is to be the workload's bottleneck. It combines the
//! accessibility of roofline models with the microarchitectural detail of
//! performance counters: training requires nothing but counter samples.
//!
//! ## Model structure
//!
//! * Input data are [`Sample`]s: per measurement period, a time `T`, a work
//!   quantity `W`, and one metric's increase `M_x`, giving throughput
//!   `P = W/T` and metric-specific operational intensity `I_x = W/M_x`.
//! * Each metric gets an independent [`PiecewiseRoofline`]: an upper bound
//!   on `P` as a function of `I_x`, fitted as increasing concave-down
//!   segments left of the highest-throughput sample (a convex-hull walk)
//!   and decreasing concave-up segments to its right (a shortest-path
//!   search over the Pareto front).
//! * A [`SpireModel`] is the ensemble: estimates merge per metric with a
//!   time-weighted average and reduce to the minimum over metrics.
//! * A [`BottleneckReport`] ranks metrics ascending by estimate; the lowest
//!   are the likely bottlenecks.
//!
//! ## Quickstart
//!
//! ```
//! use spire_core::{BottleneckReport, Sample, SampleSet, SpireModel, TrainConfig};
//! use spire_core::catalog::MetricCatalog;
//!
//! # fn main() -> Result<(), spire_core::SpireError> {
//! // Train from counter samples (here: synthetic IPC-vs-stalls data).
//! let mut training = SampleSet::new();
//! for (cycles, instrs, stalls) in [
//!     (1e9, 1e9, 5e8),
//!     (1e9, 2e9, 2e8),
//!     (1e9, 3e9, 5e7),
//! ] {
//!     training.push(Sample::new("cycle_activity.stalls_total", cycles, instrs, stalls)?);
//! }
//! let model = SpireModel::train(&training, TrainConfig::default())?;
//!
//! // Analyze a workload's samples.
//! let mut workload = SampleSet::new();
//! workload.push(Sample::new("cycle_activity.stalls_total", 1e9, 1.2e9, 4e8)?);
//! let estimate = model.estimate(&workload)?;
//! let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
//! println!("{}", report.to_table(10));
//! # Ok(())
//! # }
//! ```
//!
//! The sibling crates in this workspace supply everything around the model:
//! `spire-sim` (a simulated CPU with a PMU), `spire-workloads` (synthetic
//! workloads), `spire-counters` (sampling sessions and `perf stat` import),
//! `spire-tma` (the Top-Down Analysis baseline), `spire-baselines` (classic
//! rooflines and a regression baseline) and `spire-plot` (rendering).

#![warn(missing_docs)]
// `deny` rather than `forbid`: the crate is unsafe-free except for two
// narrowly scoped, module-level `#[allow]` islands — the mmap view in
// [`colfile::mmap`] and the explicit-SIMD estimate loops behind the `simd`
// feature — both of which document their safety obligations inline.
#![deny(unsafe_code)]

pub mod analysis;
pub mod catalog;
pub mod colfile;
pub mod ensemble;
mod error;
pub mod fault;
pub mod geometry;
pub mod graph;
pub mod machine;
pub mod online;
pub mod parallel;
pub mod pipeline;
pub mod roofline;
mod sample;
pub mod snapshot;
pub mod stats;

pub use analysis::{BottleneckReport, RankedMetric};
pub use colfile::{ColFileContents, ColFileReport, ColFileWriter, QuarantinedChunk};
pub use ensemble::{
    EnsembleAggregation, Estimate, MergeStrategy, MetricEstimate, QuarantinedMetric, SpireModel,
    TrainConfig, TrainOutcome, TrainQuarantineReason, TrainReport, TrainStrictness,
};
pub use error::{Result, SpireError};
pub use machine::{config_fingerprint, normalize_set, MachinePeaks, MachineSpec};
pub use online::{OnlineTrainer, UpdateOutcome, UpdateReport};
pub use pipeline::{
    CollectingSink, DiagnosticsBus, EventSink, Pipeline, PipelineConfig, RunContext, Stage,
};
pub use roofline::{FitOptions, PiecewiseRoofline, RightFitMode, RightRegion, ThinningNotice};
pub use sample::{MetricColumn, MetricId, Sample, SampleIter, SampleSet};
pub use snapshot::{
    write_atomic, write_atomic_bytes, ModelSnapshot, SnapshotDelta, SnapshotLoad, SnapshotMode,
    SnapshotProvenance, SnapshotReport, SNAPSHOT_FORMAT_VERSION,
};
