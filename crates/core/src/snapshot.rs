//! Versioned, checksummed on-disk form for trained [`SpireModel`]s.
//!
//! A snapshot is the durability contract between `train` and
//! `estimate`/`analyze`: training is expensive (the paper's setup fits 424
//! rooflines over 1.3M samples), so serving must load a previously trained
//! ensemble — and must be able to *trust* it. The format is designed so
//! damage is detected, attributed, and contained:
//!
//! * a `format_version` field gates structural compatibility — a snapshot
//!   from a future format refuses to load rather than misparse;
//! * each per-metric roofline is stored as an *embedded JSON string* with
//!   its own FNV-1a checksum over the exact bytes, so a bit flip inside one
//!   record is attributable to that record and cannot silently change a
//!   ceiling;
//! * loading re-validates every roofline's structural invariants
//!   ([`PiecewiseRoofline::validate`]) — a record can be bytewise intact
//!   yet semantically hostile;
//! * [`SnapshotMode::Lenient`] salvages the intact metrics from a partially
//!   corrupted snapshot (reporting what was dropped); strict mode refuses
//!   the whole artifact on the first damaged record.
//!
//! Container-level damage — truncation, malformed JSON, an unsupported
//! version — is fatal in both modes: there is no trustworthy boundary to
//! salvage within.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ensemble::{TrainConfig, TrainReport};
use crate::error::{Result, SpireError};
use crate::roofline::PiecewiseRoofline;
use crate::sample::MetricId;
use crate::SpireModel;

/// The snapshot format version this build writes and the newest it reads.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// The checksum algorithm identifier written into snapshots.
const CHECKSUM_ALGORITHM: &str = "fnv1a64";

/// 64-bit FNV-1a over `bytes` — dependency-free, stable across platforms,
/// and plenty for integrity (not security) checking.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Where the training data for a snapshot came from: dataset labels,
/// sample counts, and the ingest layer's degradation summaries.
///
/// Populated by the CLI from the counters crate's `Dataset`; kept generic
/// here (strings and counts) so the dependency direction stays
/// `counters -> core`.
#[derive(Debug, Clone, PartialEq, Default, Deserialize)]
pub struct SnapshotProvenance {
    /// Path or description of the source dataset.
    pub source: Option<String>,
    /// Workload labels the training data was collected from.
    pub labels: Vec<String>,
    /// Total training samples across all labels.
    pub total_samples: usize,
    /// Per-label ingest report summaries (label -> summary line), for
    /// datasets that came through the fault-tolerant ingest.
    pub ingest_summaries: BTreeMap<String, String>,
    /// The machine the training data was collected on, when known.
    /// Absent for legacy snapshots — absence is never treated as a
    /// mismatch, only as missing provenance.
    pub machine: Option<crate::MachineSpec>,
}

/// Hand-written so a machine-less provenance serializes without a
/// `machine` key at all: snapshots written before machines existed stay
/// byte-identical, and "no machine" is visibly absence rather than
/// `null`. (The vendored derive has no `skip_serializing_if`.)
impl Serialize for SnapshotProvenance {
    fn serialize<S: serde::ser::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::{to_content, Content};
        let key = |k: &str| Content::Str(k.to_owned());
        let mut entries = vec![
            (key("source"), to_content(&self.source)),
            (key("labels"), to_content(&self.labels)),
            (key("total_samples"), to_content(&self.total_samples)),
            (key("ingest_summaries"), to_content(&self.ingest_summaries)),
        ];
        if let Some(machine) = &self.machine {
            entries.push((key("machine"), to_content(machine)));
        }
        serializer.serialize_content(Content::Map(entries))
    }
}

/// One metric's roofline record: the fit serialized to a JSON string plus
/// a checksum over those exact bytes.
///
/// The payload is a *string* (JSON-in-JSON) deliberately: checksumming the
/// exact stored bytes makes verification independent of any number
/// re-formatting a structural round-trip might apply, and a record whose
/// payload no longer parses is attributable to that record rather than
/// poisoning the whole file. The fields are public so fault-injection
/// harnesses and tooling can tamper with records deliberately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// The metric this record models.
    pub metric: MetricId,
    /// FNV-1a 64 checksum of `roofline`'s UTF-8 bytes, in lowercase hex.
    pub checksum: String,
    /// The [`PiecewiseRoofline`] serialized as canonical JSON.
    pub roofline: String,
}

impl MetricRecord {
    /// Builds a record (and its checksum) for one fitted roofline.
    fn new(roofline: &PiecewiseRoofline) -> Result<Self> {
        let payload = serde_json::to_string(roofline).map_err(|e| SpireError::SnapshotFormat {
            reason: format!("failed to serialize roofline: {e}"),
        })?;
        Ok(MetricRecord {
            metric: roofline.metric().clone(),
            checksum: format!("{:016x}", fnv1a64(payload.as_bytes())),
            roofline: payload,
        })
    }

    /// Verifies and decodes the record into a validated roofline.
    fn decode(&self) -> Result<PiecewiseRoofline> {
        let corrupt = |reason: String| SpireError::SnapshotRecordCorrupt {
            metric: self.metric.to_string(),
            reason,
        };
        let actual = format!("{:016x}", fnv1a64(self.roofline.as_bytes()));
        if actual != self.checksum {
            return Err(corrupt(format!(
                "checksum mismatch (stored {}, computed {actual})",
                self.checksum
            )));
        }
        let roofline: PiecewiseRoofline = serde_json::from_str(&self.roofline)
            .map_err(|e| corrupt(format!("payload does not parse: {e}")))?;
        if roofline.metric() != &self.metric {
            return Err(corrupt(format!(
                "payload models metric `{}`, record claims `{}`",
                roofline.metric(),
                self.metric
            )));
        }
        roofline.validate()?;
        Ok(roofline)
    }
}

/// How snapshot loading treats damaged per-metric records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Salvage the intact metrics; report the dropped ones.
    #[default]
    Lenient,
    /// Refuse the whole snapshot on the first damaged record.
    Strict,
}

/// One metric dropped by a lenient snapshot load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedMetric {
    /// The metric whose record was damaged.
    pub metric: MetricId,
    /// Why it was dropped (checksum mismatch, parse failure, invariant
    /// violation).
    pub reason: String,
}

/// What a snapshot load did: loaded/dropped counts, mirroring the
/// train-time [`TrainReport`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SnapshotReport {
    /// Metric records present in the snapshot.
    pub metrics_total: usize,
    /// Records that verified, parsed, and validated.
    pub metrics_loaded: usize,
    /// Records dropped by the lenient load, in snapshot order.
    pub dropped: Vec<DroppedMetric>,
}

impl SnapshotReport {
    /// Returns `true` if any record was dropped (the model is usable but
    /// degraded).
    pub fn is_degraded(&self) -> bool {
        !self.dropped.is_empty()
    }

    /// One-line summary, e.g. `loaded 10/12 snapshot metrics (2 dropped)`.
    pub fn summary(&self) -> String {
        format!(
            "loaded {}/{} snapshot metrics ({} dropped)",
            self.metrics_loaded,
            self.metrics_total,
            self.dropped.len()
        )
    }
}

/// A loaded model together with the [`SnapshotReport`] describing what was
/// salvaged.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotLoad {
    /// The reassembled (possibly degraded) model.
    pub model: SpireModel,
    /// Per-record load outcomes.
    pub report: SnapshotReport,
}

/// The on-disk snapshot container: format version, training configuration,
/// provenance, and one checksummed [`MetricRecord`] per trained metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Format version; see [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Checksum algorithm used by the records (`"fnv1a64"`).
    pub checksum_algorithm: String,
    /// The configuration the model was trained with.
    pub config: TrainConfig,
    /// Metrics skipped at train time for having too few samples.
    pub skipped_metrics: Vec<MetricId>,
    /// Training-data provenance, when the trainer supplied it.
    pub provenance: Option<SnapshotProvenance>,
    /// The train-time quarantine report, when training was fault-isolated.
    pub train_report: Option<TrainReport>,
    /// One record per trained metric, in metric-name order.
    pub metrics: Vec<MetricRecord>,
}

impl ModelSnapshot {
    /// Builds a snapshot of `model`, checksumming every per-metric record.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::SnapshotFormat`] if a roofline fails to
    /// serialize (not expected for well-formed models).
    pub fn from_model(model: &SpireModel) -> Result<Self> {
        let metrics: Result<Vec<MetricRecord>> =
            model.rooflines().values().map(MetricRecord::new).collect();
        Ok(ModelSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            checksum_algorithm: CHECKSUM_ALGORITHM.to_owned(),
            config: model.config().clone(),
            skipped_metrics: model.skipped_metrics().to_vec(),
            provenance: None,
            train_report: None,
            metrics: metrics?,
        })
    }

    /// Attaches training-data provenance.
    pub fn with_provenance(mut self, provenance: SnapshotProvenance) -> Self {
        self.provenance = Some(provenance);
        self
    }

    /// Attaches the train-time quarantine report.
    pub fn with_train_report(mut self, report: TrainReport) -> Self {
        self.train_report = Some(report);
        self
    }

    /// The machine this snapshot's training data came from, when its
    /// provenance recorded one.
    pub fn machine(&self) -> Option<&crate::MachineSpec> {
        self.provenance.as_ref().and_then(|p| p.machine.as_ref())
    }

    /// Serializes the snapshot container to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot containers always serialize")
    }

    /// Parses a snapshot container from JSON, checking the format version
    /// and checksum algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::SnapshotFormat`] for malformed or truncated
    /// JSON, an unsupported `format_version`, or an unknown checksum
    /// algorithm — all fatal in both load modes.
    pub fn from_json(text: &str) -> Result<Self> {
        let snapshot: ModelSnapshot =
            serde_json::from_str(text).map_err(|e| SpireError::SnapshotFormat {
                reason: format!("container does not parse: {e}"),
            })?;
        if snapshot.format_version == 0 || snapshot.format_version > SNAPSHOT_FORMAT_VERSION {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "unsupported format version {} (this build reads up to {})",
                    snapshot.format_version, SNAPSHOT_FORMAT_VERSION
                ),
            });
        }
        if snapshot.checksum_algorithm != CHECKSUM_ALGORITHM {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "unknown checksum algorithm `{}` (expected `{CHECKSUM_ALGORITHM}`)",
                    snapshot.checksum_algorithm
                ),
            });
        }
        Ok(snapshot)
    }

    /// Verifies every record and reassembles the model.
    ///
    /// In [`SnapshotMode::Lenient`], damaged records are dropped into the
    /// returned [`SnapshotReport`] and the model is built from the
    /// survivors; in [`SnapshotMode::Strict`] the first damaged record's
    /// error is returned.
    ///
    /// # Errors
    ///
    /// [`SpireError::SnapshotRecordCorrupt`] /
    /// [`SpireError::ModelInvariantViolation`] in strict mode;
    /// [`SpireError::SnapshotFormat`] when no metric survives a lenient
    /// load (a zero-metric model cannot estimate).
    pub fn into_model(self, mode: SnapshotMode) -> Result<SnapshotLoad> {
        let metrics_total = self.metrics.len();
        let mut rooflines = BTreeMap::new();
        let mut dropped = Vec::new();
        for record in &self.metrics {
            match record.decode() {
                Ok(roofline) => {
                    rooflines.insert(record.metric.clone(), roofline);
                }
                Err(e) => {
                    if mode == SnapshotMode::Strict {
                        return Err(e);
                    }
                    dropped.push(DroppedMetric {
                        metric: record.metric.clone(),
                        reason: e.to_string(),
                    });
                }
            }
        }
        if rooflines.is_empty() {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "no metric record could be salvaged ({metrics_total} present, all damaged \
                     or none stored)"
                ),
            });
        }
        let report = SnapshotReport {
            metrics_total,
            metrics_loaded: rooflines.len(),
            dropped,
        };
        Ok(SnapshotLoad {
            model: SpireModel::from_parts(rooflines, self.config, self.skipped_metrics),
            report,
        })
    }
}

impl ModelSnapshot {
    /// A 16-hex-digit FNV-1a fingerprint of the snapshot's model content:
    /// the per-metric `metric:checksum` lines in record order.
    ///
    /// Two snapshots of the same model always agree (records are stored in
    /// metric-name order and each checksum covers the exact roofline
    /// bytes); any change to any metric's fit changes the fingerprint.
    /// Container metadata (provenance, train report) is deliberately
    /// excluded — the fingerprint anchors *model* identity for delta
    /// application.
    pub fn fingerprint(&self) -> String {
        let mut lines = String::new();
        for record in &self.metrics {
            lines.push_str(record.metric.as_str());
            lines.push(':');
            lines.push_str(&record.checksum);
            lines.push('\n');
        }
        format!("{:016x}", fnv1a64(lines.as_bytes()))
    }
}

/// A *delta* between two model snapshots: only the per-metric records that
/// changed, plus the metrics that disappeared — the streaming update loop's
/// alternative to rewriting a full snapshot after every batch.
///
/// Deltas carry the base and result fingerprints ([`ModelSnapshot::fingerprint`])
/// so application is anchored at both ends: applying to the wrong base, or
/// a corrupted splice, is a typed error rather than a silently wrong model.
/// The changed records keep the full-snapshot [`MetricRecord`] form, so the
/// same FNV checksums guard each roofline's bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Format version; shares [`SNAPSHOT_FORMAT_VERSION`] with snapshots.
    pub format_version: u32,
    /// Checksum algorithm used by the records (`"fnv1a64"`).
    pub checksum_algorithm: String,
    /// Fingerprint of the snapshot this delta applies to.
    pub base_fingerprint: String,
    /// Fingerprint of the snapshot the application must produce.
    pub result_fingerprint: String,
    /// The updated training configuration.
    pub config: TrainConfig,
    /// The updated skipped-metric list.
    pub skipped_metrics: Vec<MetricId>,
    /// Updated provenance, when the trainer supplied it.
    pub provenance: Option<SnapshotProvenance>,
    /// The updated train report, when training was fault-isolated.
    pub train_report: Option<TrainReport>,
    /// Records added or changed since the base, in metric-name order.
    pub changed: Vec<MetricRecord>,
    /// Metrics present in the base but absent from the result, in
    /// metric-name order.
    pub removed: Vec<MetricId>,
}

impl SnapshotDelta {
    /// Computes the delta turning `base` into `updated`.
    ///
    /// A metric is *changed* if it is new or its record checksum differs;
    /// *removed* if it exists in `base` only. An empty `changed`/`removed`
    /// pair is valid (the delta still re-anchors config and reports).
    pub fn between(base: &ModelSnapshot, updated: &ModelSnapshot) -> Self {
        let base_checksums: BTreeMap<&MetricId, &str> = base
            .metrics
            .iter()
            .map(|r| (&r.metric, r.checksum.as_str()))
            .collect();
        let changed: Vec<MetricRecord> = updated
            .metrics
            .iter()
            .filter(|r| base_checksums.get(&r.metric) != Some(&r.checksum.as_str()))
            .cloned()
            .collect();
        let updated_names: BTreeMap<&MetricId, ()> =
            updated.metrics.iter().map(|r| (&r.metric, ())).collect();
        let removed: Vec<MetricId> = base
            .metrics
            .iter()
            .filter(|r| !updated_names.contains_key(&r.metric))
            .map(|r| r.metric.clone())
            .collect();
        SnapshotDelta {
            format_version: SNAPSHOT_FORMAT_VERSION,
            checksum_algorithm: CHECKSUM_ALGORITHM.to_owned(),
            base_fingerprint: base.fingerprint(),
            result_fingerprint: updated.fingerprint(),
            config: updated.config.clone(),
            skipped_metrics: updated.skipped_metrics.clone(),
            provenance: updated.provenance.clone(),
            train_report: updated.train_report.clone(),
            changed,
            removed,
        }
    }

    /// Applies the delta to `base`, returning the updated snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::SnapshotFormat`] if `base`'s fingerprint does
    /// not match [`SnapshotDelta::base_fingerprint`], or if the spliced
    /// result does not reproduce [`SnapshotDelta::result_fingerprint`]
    /// (either indicates the delta belongs to a different history or was
    /// damaged in a way the per-record checksums cannot see).
    /// Returns [`SpireError::MachineMismatch`] when both the base and the
    /// delta carry machine provenance and the machines differ — a stream
    /// of updates must not silently hop microarchitectures. Either side
    /// lacking a machine (legacy artifacts) passes the check.
    pub fn apply(&self, base: &ModelSnapshot) -> Result<ModelSnapshot> {
        if let (Some(base_m), Some(delta_m)) = (base.machine(), self.machine()) {
            if !base_m.matches(delta_m) {
                return Err(SpireError::MachineMismatch {
                    expected: base_m.tag(),
                    found: delta_m.tag(),
                    context: "snapshot delta apply".to_owned(),
                });
            }
        }
        let base_fp = base.fingerprint();
        if base_fp != self.base_fingerprint {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "delta applies to base fingerprint {}, got a snapshot with {base_fp}",
                    self.base_fingerprint
                ),
            });
        }
        let mut metrics = base.metrics.clone();
        metrics.retain(|r| !self.removed.contains(&r.metric));
        for record in &self.changed {
            match metrics.binary_search_by(|r| r.metric.cmp(&record.metric)) {
                Ok(i) => metrics[i] = record.clone(),
                Err(i) => metrics.insert(i, record.clone()),
            }
        }
        let result = ModelSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            checksum_algorithm: CHECKSUM_ALGORITHM.to_owned(),
            config: self.config.clone(),
            skipped_metrics: self.skipped_metrics.clone(),
            provenance: self.provenance.clone(),
            train_report: self.train_report.clone(),
            metrics,
        };
        let result_fp = result.fingerprint();
        if result_fp != self.result_fingerprint {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "applied delta produced fingerprint {result_fp}, expected {}",
                    self.result_fingerprint
                ),
            });
        }
        Ok(result)
    }

    /// The machine this delta's updated provenance names, when recorded.
    pub fn machine(&self) -> Option<&crate::MachineSpec> {
        self.provenance.as_ref().and_then(|p| p.machine.as_ref())
    }

    /// Serializes the delta to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot deltas always serialize")
    }

    /// Parses a delta from JSON, checking the format version and checksum
    /// algorithm like [`ModelSnapshot::from_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::SnapshotFormat`] for malformed JSON, an
    /// unsupported version, or an unknown checksum algorithm.
    pub fn from_json(text: &str) -> Result<Self> {
        let delta: SnapshotDelta =
            serde_json::from_str(text).map_err(|e| SpireError::SnapshotFormat {
                reason: format!("delta does not parse: {e}"),
            })?;
        if delta.format_version == 0 || delta.format_version > SNAPSHOT_FORMAT_VERSION {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "unsupported delta format version {} (this build reads up to {})",
                    delta.format_version, SNAPSHOT_FORMAT_VERSION
                ),
            });
        }
        if delta.checksum_algorithm != CHECKSUM_ALGORITHM {
            return Err(SpireError::SnapshotFormat {
                reason: format!(
                    "unknown checksum algorithm `{}` (expected `{CHECKSUM_ALGORITHM}`)",
                    delta.checksum_algorithm
                ),
            });
        }
        Ok(delta)
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file which is then renamed over the destination, so a crash
/// mid-write can never leave a torn snapshot (or delta) for a later load
/// to chew on — the destination either keeps its old bytes or holds the
/// complete new ones.
///
/// # Errors
///
/// Any I/O error from writing or renaming; the temporary file is cleaned
/// up on a best-effort basis when the rename fails.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Byte-level form of [`write_atomic`], for binary artifacts such as
/// [`crate::colfile`] datasets: write to a temporary sibling, then rename
/// over the target.
///
/// # Errors
///
/// Any I/O error from writing or renaming; the temporary file is cleaned
/// up on a best-effort basis when the rename fails.
pub fn write_atomic_bytes(path: &std::path::Path, contents: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Loads a model from either a snapshot or the legacy raw-model JSON that
/// `train --out` writes, sniffing the format by attempting the snapshot
/// container first.
///
/// Returns the model and, for snapshots, the load report (`None` for
/// legacy models, which carry no integrity information).
///
/// # Errors
///
/// Snapshot errors as in [`ModelSnapshot::into_model`]; for legacy input,
/// [`SpireError::SnapshotFormat`] when the text parses as neither format.
/// A legacy model is also run through [`PiecewiseRoofline::validate`]
/// per-metric (strict: any violation fails; lenient: violations are
/// reported but legacy models carry no per-record boundary, so the model
/// is refused only if every metric is invalid).
pub fn load_model(text: &str, mode: SnapshotMode) -> Result<(SpireModel, Option<SnapshotReport>)> {
    match ModelSnapshot::from_json(text) {
        Ok(snapshot) => {
            let loaded = snapshot.into_model(mode)?;
            return Ok((loaded.model, Some(loaded.report)));
        }
        Err(SpireError::SnapshotFormat { reason })
            if text.contains("\"format_version\"") || text.contains("\"checksum_algorithm\"") =>
        {
            // The text is (or claims to be) a snapshot; don't fall back to
            // the legacy parser and mask a version or corruption problem.
            return Err(SpireError::SnapshotFormat { reason });
        }
        Err(_) => {}
    }
    let model: SpireModel = serde_json::from_str(text).map_err(|e| SpireError::SnapshotFormat {
        reason: format!("neither a model snapshot nor a legacy model: {e}"),
    })?;
    for roofline in model.rooflines().values() {
        match roofline.validate() {
            Ok(()) => {}
            Err(e) if mode == SnapshotMode::Strict => return Err(e),
            Err(_) => {}
        }
    }
    Ok((model, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sample, SampleSet, TrainConfig};

    fn trained() -> SpireModel {
        let mut set = SampleSet::new();
        for m in 0..4 {
            for i in 1..6 {
                let s = Sample::new(
                    format!("metric_{m}").as_str(),
                    10.0,
                    (5 * i) as f64,
                    (10 - i) as f64,
                )
                .unwrap();
                set.push(s);
            }
        }
        SpireModel::train(&set, TrainConfig::default()).unwrap()
    }

    #[test]
    fn snapshot_round_trip_is_identity() {
        let model = trained();
        let json = ModelSnapshot::from_model(&model).unwrap().to_json();
        let loaded = ModelSnapshot::from_json(&json)
            .unwrap()
            .into_model(SnapshotMode::Strict)
            .unwrap();
        assert_eq!(loaded.model, model);
        assert_eq!(loaded.report.metrics_loaded, 4);
        assert!(!loaded.report.is_degraded());
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn corrupted_record_is_dropped_leniently_and_fatal_strictly() {
        let model = trained();
        let mut snapshot = ModelSnapshot::from_model(&model).unwrap();
        // Tamper with one record's payload without updating its checksum.
        snapshot.metrics[1].roofline = snapshot.metrics[1].roofline.replacen('1', "2", 1);
        let json = snapshot.to_json();

        let strict = ModelSnapshot::from_json(&json)
            .unwrap()
            .into_model(SnapshotMode::Strict);
        assert!(matches!(
            strict.unwrap_err(),
            SpireError::SnapshotRecordCorrupt { .. }
        ));

        let lenient = ModelSnapshot::from_json(&json)
            .unwrap()
            .into_model(SnapshotMode::Lenient)
            .unwrap();
        assert_eq!(lenient.report.metrics_loaded, 3);
        assert_eq!(lenient.report.dropped.len(), 1);
        assert_eq!(lenient.report.dropped[0].metric.as_str(), "metric_1");
        assert!(lenient.report.dropped[0].reason.contains("checksum"));
        assert!(lenient.model.roofline(&"metric_1".into()).is_none());
        assert!(lenient.model.roofline(&"metric_0".into()).is_some());
    }

    #[test]
    fn metric_name_mismatch_is_corruption() {
        let model = trained();
        let mut snapshot = ModelSnapshot::from_model(&model).unwrap();
        // Swap two records' metric names (payloads and checksums intact).
        let m0 = snapshot.metrics[0].metric.clone();
        snapshot.metrics[0].metric = snapshot.metrics[1].metric.clone();
        snapshot.metrics[1].metric = m0;
        let err = snapshot.into_model(SnapshotMode::Strict).unwrap_err();
        match err {
            SpireError::SnapshotRecordCorrupt { reason, .. } => {
                assert!(reason.contains("record claims"));
            }
            other => panic!("expected record corruption, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_refuses_in_both_modes() {
        let model = trained();
        let mut snapshot = ModelSnapshot::from_model(&model).unwrap();
        snapshot.format_version = 99;
        let json = snapshot.to_json();
        let err = ModelSnapshot::from_json(&json).unwrap_err();
        assert!(matches!(err, SpireError::SnapshotFormat { .. }));
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn truncated_container_refuses_in_both_modes() {
        let model = trained();
        let json = ModelSnapshot::from_model(&model).unwrap().to_json();
        let truncated = &json[..json.len() / 2];
        assert!(matches!(
            ModelSnapshot::from_json(truncated).unwrap_err(),
            SpireError::SnapshotFormat { .. }
        ));
        // Auto-detecting loader must not fall back to the legacy parser
        // for a damaged snapshot.
        assert!(matches!(
            load_model(truncated, SnapshotMode::Lenient).unwrap_err(),
            SpireError::SnapshotFormat { .. }
        ));
    }

    #[test]
    fn all_records_damaged_refuses_even_leniently() {
        let model = trained();
        let mut snapshot = ModelSnapshot::from_model(&model).unwrap();
        for record in &mut snapshot.metrics {
            record.checksum = "0000000000000000".to_owned();
        }
        assert!(matches!(
            snapshot.into_model(SnapshotMode::Lenient).unwrap_err(),
            SpireError::SnapshotFormat { .. }
        ));
    }

    #[test]
    fn load_model_accepts_legacy_raw_model_json() {
        let model = trained();
        let legacy = serde_json::to_string(&model).unwrap();
        let (loaded, report) = load_model(&legacy, SnapshotMode::Strict).unwrap();
        assert_eq!(loaded, model);
        assert!(report.is_none());
    }

    #[test]
    fn load_model_accepts_snapshot_json() {
        let model = trained();
        let json = ModelSnapshot::from_model(&model).unwrap().to_json();
        let (loaded, report) = load_model(&json, SnapshotMode::Lenient).unwrap();
        assert_eq!(loaded, model);
        assert!(!report.unwrap().is_degraded());
    }

    #[test]
    fn provenance_and_train_report_round_trip() {
        let model = trained();
        let provenance = SnapshotProvenance {
            source: Some("data.json".to_owned()),
            labels: vec!["wl_a".to_owned(), "wl_b".to_owned()],
            total_samples: 20,
            ingest_summaries: [("wl_a".to_owned(), "scaled 10/10 rows".to_owned())]
                .into_iter()
                .collect(),
            machine: None,
        };
        let snapshot = ModelSnapshot::from_model(&model)
            .unwrap()
            .with_provenance(provenance.clone())
            .with_train_report(TrainReport::default());
        let back = ModelSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.provenance.as_ref(), Some(&provenance));
        assert!(back.train_report.is_some());
        let loaded = back.into_model(SnapshotMode::Strict).unwrap();
        assert_eq!(loaded.model, model);
    }

    fn machine_spec(name: &str, fp: &str) -> crate::MachineSpec {
        crate::MachineSpec {
            name: name.to_owned(),
            fingerprint: fp.to_owned(),
            peaks: crate::MachinePeaks {
                throughput: 4.0,
                bandwidth: std::collections::BTreeMap::new(),
            },
            normalized: false,
        }
    }

    #[test]
    fn machine_survives_snapshot_round_trip() {
        let model = trained();
        let provenance = SnapshotProvenance {
            machine: Some(machine_spec("little", "00aa00aa00aa00aa")),
            ..SnapshotProvenance::default()
        };
        let snapshot = ModelSnapshot::from_model(&model)
            .unwrap()
            .with_provenance(provenance);
        let back = ModelSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(back.machine().unwrap().name, "little");
        assert_eq!(back.machine().unwrap().fingerprint, "00aa00aa00aa00aa");
        // Machine provenance is metadata: the model fingerprint ignores it.
        assert_eq!(
            back.fingerprint(),
            ModelSnapshot::from_model(&model).unwrap().fingerprint()
        );
    }

    #[test]
    fn machine_less_provenance_serializes_without_machine_key() {
        // Legacy byte-compat: snapshots that never saw a machine must not
        // grow a `"machine": null` field.
        let model = trained();
        let snapshot = ModelSnapshot::from_model(&model)
            .unwrap()
            .with_provenance(SnapshotProvenance::default());
        assert!(!snapshot.to_json().contains("\"machine\""));
        assert!(snapshot.machine().is_none());
    }

    #[test]
    fn legacy_provenance_json_without_machine_field_loads() {
        let model = trained();
        let snapshot = ModelSnapshot::from_model(&model)
            .unwrap()
            .with_provenance(SnapshotProvenance::default());
        // Simulate a pre-machine snapshot on disk: no `machine` key at all.
        let json = snapshot.to_json();
        let back = ModelSnapshot::from_json(&json).unwrap();
        assert!(back.provenance.as_ref().unwrap().machine.is_none());
        assert!(back.into_model(SnapshotMode::Strict).is_ok());
    }

    /// Like [`trained`] but with one metric's data perturbed and one metric
    /// added, so a delta against [`trained`] has both changed and new
    /// records.
    fn trained_updated() -> SpireModel {
        let mut set = SampleSet::new();
        for m in 0..5 {
            for i in 1..6 {
                let w = if m == 1 {
                    (6 * i) as f64
                } else {
                    (5 * i) as f64
                };
                set.push(
                    Sample::new(format!("metric_{m}").as_str(), 10.0, w, (10 - i) as f64).unwrap(),
                );
            }
        }
        SpireModel::train(&set, TrainConfig::default()).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = ModelSnapshot::from_model(&trained()).unwrap();
        let b = ModelSnapshot::from_model(&trained()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
        // Metadata does not participate in the fingerprint...
        let with_meta = a.clone().with_train_report(TrainReport::default());
        assert_eq!(a.fingerprint(), with_meta.fingerprint());
        // ...but model content does.
        let updated = ModelSnapshot::from_model(&trained_updated()).unwrap();
        assert_ne!(a.fingerprint(), updated.fingerprint());
    }

    #[test]
    fn delta_round_trip_reproduces_updated_snapshot() {
        let base = ModelSnapshot::from_model(&trained()).unwrap();
        let updated = ModelSnapshot::from_model(&trained_updated()).unwrap();
        let delta = SnapshotDelta::between(&base, &updated);
        // metric_1 changed and metric_4 is new; the untouched three are
        // not shipped.
        assert_eq!(delta.changed.len(), 2);
        assert!(delta.removed.is_empty());
        let back = SnapshotDelta::from_json(&delta.to_json()).unwrap();
        let applied = back.apply(&base).unwrap();
        assert_eq!(applied, updated);
        // And the applied snapshot loads into the exact updated model.
        let loaded = applied.into_model(SnapshotMode::Strict).unwrap();
        assert_eq!(loaded.model, trained_updated());
    }

    #[test]
    fn delta_records_removed_metrics() {
        let base = ModelSnapshot::from_model(&trained_updated()).unwrap();
        let updated = ModelSnapshot::from_model(&trained()).unwrap();
        let delta = SnapshotDelta::between(&base, &updated);
        assert_eq!(delta.removed, vec![MetricId::new("metric_4")]);
        assert_eq!(delta.apply(&base).unwrap(), updated);
    }

    #[test]
    fn delta_refuses_wrong_base_and_tampered_result() {
        let base = ModelSnapshot::from_model(&trained()).unwrap();
        let updated = ModelSnapshot::from_model(&trained_updated()).unwrap();
        let delta = SnapshotDelta::between(&base, &updated);

        // Applying to the wrong base is a typed error.
        let err = delta.apply(&updated).unwrap_err();
        assert!(matches!(err, SpireError::SnapshotFormat { .. }));
        assert!(err.to_string().contains("base fingerprint"));

        // A tampered record that still checksums (record-level integrity
        // intact, wrong history) is caught by the result fingerprint.
        let mut tampered = delta.clone();
        tampered.changed.pop();
        let err = tampered.apply(&base).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn delta_refuses_cross_machine_apply_with_typed_error() {
        let prov_a = SnapshotProvenance {
            machine: Some(machine_spec("skylake-server", "aaaaaaaaaaaaaaaa")),
            ..SnapshotProvenance::default()
        };
        let prov_b = SnapshotProvenance {
            machine: Some(machine_spec("little", "bbbbbbbbbbbbbbbb")),
            ..SnapshotProvenance::default()
        };
        let base = ModelSnapshot::from_model(&trained())
            .unwrap()
            .with_provenance(prov_a.clone());
        let updated = ModelSnapshot::from_model(&trained_updated())
            .unwrap()
            .with_provenance(prov_b);
        let delta = SnapshotDelta::between(&base, &updated);
        let err = delta.apply(&base).unwrap_err();
        match err {
            SpireError::MachineMismatch {
                expected, found, ..
            } => {
                assert!(expected.contains("aaaaaaaaaaaaaaaa"));
                assert!(found.contains("bbbbbbbbbbbbbbbb"));
            }
            other => panic!("expected machine mismatch, got {other:?}"),
        }

        // Same machine on both sides applies cleanly...
        let same = ModelSnapshot::from_model(&trained_updated())
            .unwrap()
            .with_provenance(prov_a.clone());
        let delta = SnapshotDelta::between(&base, &same);
        assert!(delta.apply(&base).is_ok());

        // ...and a machine-less side (legacy) is never a mismatch.
        let legacy_updated = ModelSnapshot::from_model(&trained_updated()).unwrap();
        let delta = SnapshotDelta::between(&base, &legacy_updated);
        assert!(delta.apply(&base).is_ok());
    }

    #[test]
    fn delta_json_is_rejected_by_the_model_loader() {
        // Feeding a delta where a snapshot is expected must fail cleanly,
        // not fall back to the legacy parser.
        let base = ModelSnapshot::from_model(&trained()).unwrap();
        let updated = ModelSnapshot::from_model(&trained_updated()).unwrap();
        let json = SnapshotDelta::between(&base, &updated).to_json();
        assert!(matches!(
            load_model(&json, SnapshotMode::Lenient).unwrap_err(),
            SpireError::SnapshotFormat { .. }
        ));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("spire_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_estimates_bit_identical_to_in_memory() {
        let model = trained();
        let mut wl = SampleSet::new();
        for i in 1..4 {
            wl.push(Sample::new("metric_0", 10.0, (3 * i) as f64, 2.0).unwrap());
            wl.push(Sample::new("metric_2", 10.0, (4 * i) as f64, 3.0).unwrap());
        }
        let json = ModelSnapshot::from_model(&model).unwrap().to_json();
        let (loaded, _) = load_model(&json, SnapshotMode::Strict).unwrap();
        let a = model.estimate(&wl).unwrap();
        let b = loaded.estimate(&wl).unwrap();
        assert_eq!(a.throughput().to_bits(), b.throughput().to_bits());
        assert_eq!(a.per_metric(), b.per_metric());
    }
}
