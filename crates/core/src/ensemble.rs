//! The SPIRE ensemble (paper Section III-C): one roofline per metric,
//! merged per-sample estimates, and the ensemble-wide minimum.
//!
//! Both training and estimation fan their per-metric work (one roofline
//! fit, or one Eq. (1) merge, per metric) across [`crate::parallel`]
//! worker threads when [`TrainConfig::threads`] allows. Results are
//! collected in metric-name order regardless of scheduling, so parallel
//! runs are bit-identical to serial ones.

use std::collections::BTreeMap;

use serde::de::Deserializer;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};
use crate::parallel;
use crate::roofline::{FitOptions, PiecewiseRoofline};
#[cfg(test)]
use crate::sample::Sample;
use crate::sample::{MetricColumn, MetricId, SampleSet};

/// How per-sample estimates are merged into one value per metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MergeStrategy {
    /// The paper's Eq. (1): a time-weighted average over the samples'
    /// period lengths.
    #[default]
    TimeWeighted,
    /// An unweighted arithmetic mean (ablation baseline).
    Unweighted,
}

/// How per-metric averages are reduced to the ensemble-wide estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EnsembleAggregation {
    /// The paper's choice: the minimum over metrics, mirroring the
    /// `min(π, βI)` of a conventional roofline.
    #[default]
    Min,
    /// The mean over metrics (ablation baseline; loses the bounding
    /// interpretation but shows why `min` matters).
    Mean,
}

/// Configuration for [`SpireModel::train`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainConfig {
    /// Options passed to every per-metric roofline fit.
    pub fit: FitOptions,
    /// Metrics with fewer training samples than this are skipped (with no
    /// error) rather than fitted from unrepresentative data. Must be at
    /// least 1.
    pub min_samples_per_metric: usize,
    /// How per-sample estimates merge into a per-metric value.
    pub merge: MergeStrategy,
    /// How per-metric values reduce to the ensemble estimate.
    pub aggregation: EnsembleAggregation,
    /// Worker threads for the per-metric fit/estimate fan-out: `0` (the
    /// default) uses [`parallel::available_parallelism`], `1` forces the
    /// serial path, anything else caps the worker count. Results are
    /// identical at every setting; this is purely a throughput knob.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            fit: FitOptions::default(),
            min_samples_per_metric: 1,
            merge: MergeStrategy::TimeWeighted,
            aggregation: EnsembleAggregation::Min,
            threads: 0,
        }
    }
}

/// Manual impl so configurations serialized before the `threads` field
/// existed still deserialize (a missing `threads` means `0` = auto).
impl<'de> Deserialize<'de> for TrainConfig {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Wire {
            fit: FitOptions,
            min_samples_per_metric: usize,
            merge: MergeStrategy,
            aggregation: EnsembleAggregation,
            threads: Option<usize>,
        }
        let w = Wire::deserialize(deserializer)?;
        Ok(TrainConfig {
            fit: w.fit,
            min_samples_per_metric: w.min_samples_per_metric,
            merge: w.merge,
            aggregation: w.aggregation,
            threads: w.threads.unwrap_or(0),
        })
    }
}

impl TrainConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidConfig`] if `min_samples_per_metric` is
    /// zero or the fit options are invalid.
    pub fn validate(&self) -> Result<()> {
        self.fit.validate()?;
        if self.min_samples_per_metric == 0 {
            return Err(SpireError::InvalidConfig {
                field: "min_samples_per_metric",
                reason: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// The merged estimate one metric produced for a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEstimate {
    /// The merged (time-weighted by default) throughput estimate `P̄_x`.
    pub merged: f64,
    /// Number of workload samples that contributed.
    pub sample_count: usize,
    /// Total measurement time of the contributing samples.
    pub total_time: f64,
    /// Smallest single-sample estimate (diagnostic).
    pub min_sample_estimate: f64,
    /// Largest single-sample estimate (diagnostic).
    pub max_sample_estimate: f64,
}

/// A workload's throughput estimate from a trained [`SpireModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    per_metric: BTreeMap<MetricId, MetricEstimate>,
    throughput: f64,
    aggregation: EnsembleAggregation,
}

impl Estimate {
    /// The ensemble-wide throughput estimate (the minimum of the per-metric
    /// merged estimates under the default aggregation).
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Per-metric merged estimates, keyed by metric.
    pub fn per_metric(&self) -> &BTreeMap<MetricId, MetricEstimate> {
        &self.per_metric
    }

    /// Metrics ranked ascending by merged estimate: the head of this list
    /// holds the most likely bottlenecks.
    ///
    /// Ties are broken by metric name for determinism.
    pub fn ranked(&self) -> Vec<(&MetricId, &MetricEstimate)> {
        let mut v: Vec<_> = self.per_metric.iter().collect();
        v.sort_by(Self::rank_order);
        v
    }

    /// The `k` lowest-estimate metrics (the paper's "top metrics").
    ///
    /// Uses partial selection — `O(n + k log k)` rather than a full
    /// `O(n log n)` sort — since the typical query asks for the top ~15 of
    /// the paper's 424 metrics. The result and its tie-breaking (ascending
    /// merged estimate, then metric name) are identical to taking the
    /// first `k` entries of [`Estimate::ranked`].
    pub fn top_metrics(&self, k: usize) -> Vec<(&MetricId, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut v: Vec<_> = self.per_metric.iter().collect();
        if k < v.len() {
            v.select_nth_unstable_by(k - 1, Self::rank_order);
            v.truncate(k);
        }
        v.sort_by(Self::rank_order);
        v.into_iter().map(|(m, e)| (m, e.merged)).collect()
    }

    /// Total order used by [`Estimate::ranked`] and
    /// [`Estimate::top_metrics`]: ascending merged estimate, ties broken
    /// by metric name.
    fn rank_order(
        a: &(&MetricId, &MetricEstimate),
        b: &(&MetricId, &MetricEstimate),
    ) -> std::cmp::Ordering {
        a.1.merged.total_cmp(&b.1.merged).then_with(|| a.0.cmp(b.0))
    }

    /// The metric with the lowest merged estimate, if any.
    pub fn primary_bottleneck(&self) -> Option<(&MetricId, f64)> {
        self.top_metrics(1).into_iter().next()
    }

    /// Which aggregation produced [`Estimate::throughput`].
    pub fn aggregation(&self) -> EnsembleAggregation {
        self.aggregation
    }
}

/// A trained SPIRE model: an ensemble of per-metric rooflines.
///
/// ```
/// use spire_core::{Sample, SampleSet, SpireModel, TrainConfig};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut training = SampleSet::new();
/// for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 2.0)] {
///     training.push(Sample::new("stalls", 10.0, w, m)?);
///     training.push(Sample::new("misses", 10.0, w, m * 0.5)?);
/// }
/// let model = SpireModel::train(&training, TrainConfig::default())?;
///
/// let mut workload = SampleSet::new();
/// workload.push(Sample::new("stalls", 10.0, 12.0, 8.0)?);
/// workload.push(Sample::new("misses", 10.0, 12.0, 1.0)?);
/// let estimate = model.estimate(&workload)?;
/// assert!(estimate.throughput() <= 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpireModel {
    rooflines: BTreeMap<MetricId, PiecewiseRoofline>,
    config: TrainConfig,
    skipped_metrics: Vec<MetricId>,
}

impl SpireModel {
    /// Trains an ensemble from `samples`: groups them by metric and fits
    /// one roofline per metric (paper Fig. 3).
    ///
    /// Metrics with fewer than
    /// [`min_samples_per_metric`](TrainConfig::min_samples_per_metric)
    /// samples are recorded in [`SpireModel::skipped_metrics`] and excluded
    /// from the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyTrainingSet`] if `samples` is empty or no
    /// metric reaches the minimum sample count, and
    /// [`SpireError::InvalidConfig`] for invalid configuration.
    pub fn train(samples: &SampleSet, config: TrainConfig) -> Result<Self> {
        config.validate()?;
        if samples.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        let mut skipped = Vec::new();
        let mut jobs: Vec<&MetricColumn> = Vec::new();
        for (metric, column) in samples.by_metric() {
            if column.len() < config.min_samples_per_metric {
                skipped.push(metric.clone());
            } else {
                jobs.push(column);
            }
        }
        if jobs.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        // Fan the independent per-metric fits across workers; `map`
        // returns results in job (metric-name) order, so the ensemble is
        // identical to a serial build.
        let fitted = parallel::map(&jobs, config.threads, |column| {
            PiecewiseRoofline::fit_column(column, &config.fit)
        });
        let mut rooflines = BTreeMap::new();
        for (column, fit) in jobs.iter().zip(fitted) {
            rooflines.insert(column.metric().clone(), fit?);
        }
        Ok(SpireModel {
            rooflines,
            config,
            skipped_metrics: skipped,
        })
    }

    /// Estimates a workload's maximum attainable throughput (paper Fig. 4):
    /// per-sample roofline estimates, merged per metric (Eq. 1), reduced
    /// over metrics.
    ///
    /// Workload metrics the model was not trained on are ignored; metrics
    /// in the model but absent from the workload contribute nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyWorkload`] if `workload` has no samples,
    /// [`SpireError::NoCommonMetrics`] if no workload sample belongs to
    /// a trained metric, and [`SpireError::DegenerateWeights`] if a
    /// metric's merge weights sum to zero or NaN (possible only for
    /// workload data that bypassed [`Sample::new`] validation, e.g. via
    /// deserialization).
    pub fn estimate(&self, workload: &SampleSet) -> Result<Estimate> {
        if workload.is_empty() {
            return Err(SpireError::EmptyWorkload);
        }
        // Workload metrics the model was not trained on are skipped here;
        // trained metrics absent from the workload simply produce no job.
        let jobs: Vec<(&MetricColumn, &PiecewiseRoofline)> = workload
            .by_metric()
            .filter_map(|(metric, column)| self.rooflines.get(metric).map(|r| (column, r)))
            .collect();
        if jobs.is_empty() {
            return Err(SpireError::NoCommonMetrics);
        }
        let merge = self.config.merge;
        let merged = parallel::map(&jobs, self.config.threads, |(column, roofline)| {
            merge_column(column, roofline, merge)
        });
        let mut per_metric = BTreeMap::new();
        for ((column, _), result) in jobs.iter().zip(merged) {
            per_metric.insert(column.metric().clone(), result?);
        }
        let throughput = match self.config.aggregation {
            EnsembleAggregation::Min => per_metric
                .values()
                .map(|e| e.merged)
                .fold(f64::INFINITY, f64::min),
            EnsembleAggregation::Mean => {
                per_metric.values().map(|e| e.merged).sum::<f64>() / per_metric.len() as f64
            }
        };
        Ok(Estimate {
            per_metric,
            throughput,
            aggregation: self.config.aggregation,
        })
    }

    /// The trained per-metric rooflines.
    pub fn rooflines(&self) -> &BTreeMap<MetricId, PiecewiseRoofline> {
        &self.rooflines
    }

    /// The roofline for one metric, if trained.
    pub fn roofline(&self, metric: &MetricId) -> Option<&PiecewiseRoofline> {
        self.rooflines.get(metric)
    }

    /// Metrics that were skipped during training for having too few
    /// samples.
    pub fn skipped_metrics(&self) -> &[MetricId] {
        &self.skipped_metrics
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Overrides the thread count used by [`SpireModel::estimate`]
    /// (0 = auto). Threading is purely a throughput knob — results are
    /// identical for every setting — so changing it after training is
    /// always safe.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Number of metrics in the ensemble.
    pub fn metric_count(&self) -> usize {
        self.rooflines.len()
    }
}

/// Merges one workload column through its roofline (paper Eq. 1), reading
/// the intensity and time columns as contiguous slices.
fn merge_column(
    column: &MetricColumn,
    roofline: &PiecewiseRoofline,
    merge: MergeStrategy,
) -> Result<MetricEstimate> {
    let mut weighted_sum = 0.0;
    let mut weight_total = 0.0;
    let mut min_e = f64::INFINITY;
    let mut max_e = f64::NEG_INFINITY;
    let mut total_time = 0.0;
    for (&intensity, &time) in column.intensities().iter().zip(column.times()) {
        let e = roofline.estimate(intensity);
        let w = match merge {
            MergeStrategy::TimeWeighted => time,
            MergeStrategy::Unweighted => 1.0,
        };
        weighted_sum += w * e;
        weight_total += w;
        min_e = min_e.min(e);
        max_e = max_e.max(e);
        total_time += time;
    }
    if weight_total <= 0.0 || weight_total.is_nan() {
        return Err(SpireError::DegenerateWeights {
            metric: column.metric().to_string(),
        });
    }
    Ok(MetricEstimate {
        merged: weighted_sum / weight_total,
        sample_count: column.len(),
        total_time,
        min_sample_estimate: min_e,
        max_sample_estimate: max_e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    fn training() -> SampleSet {
        let mut set = SampleSet::new();
        // "stalls": throughput rises with instructions-per-stall.
        set.push(s("stalls", 10.0, 10.0, 10.0)); // I 1, P 1
        set.push(s("stalls", 10.0, 20.0, 5.0)); // I 4, P 2
        set.push(s("stalls", 10.0, 30.0, 3.0)); // I 10, P 3
                                                // "hits": positively associated; throughput falls as hits thin out.
        set.push(s("hits", 10.0, 30.0, 30.0)); // I 1, P 3
        set.push(s("hits", 10.0, 20.0, 4.0)); // I 5, P 2
        set.push(s("hits", 10.0, 10.0, 1.0)); // I 10, P 1
        set
    }

    #[test]
    fn train_groups_by_metric() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert_eq!(model.metric_count(), 2);
        assert!(model.roofline(&MetricId::new("stalls")).is_some());
        assert!(model.roofline(&MetricId::new("hits")).is_some());
    }

    #[test]
    fn empty_training_set_errors() {
        let err = SpireModel::train(&SampleSet::new(), TrainConfig::default()).unwrap_err();
        assert!(matches!(err, SpireError::EmptyTrainingSet { metric: None }));
    }

    #[test]
    fn min_samples_filter_skips_sparse_metrics() {
        let mut set = training();
        set.push(s("rare", 10.0, 10.0, 1.0));
        let config = TrainConfig {
            min_samples_per_metric: 2,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&set, config).unwrap();
        assert_eq!(model.metric_count(), 2);
        assert_eq!(model.skipped_metrics(), [MetricId::new("rare")]);
    }

    #[test]
    fn estimate_is_min_of_per_metric_averages() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0)); // I 4 -> ~2
        wl.push(s("hits", 10.0, 20.0, 20.0)); // I 1 -> ~3
        let est = model.estimate(&wl).unwrap();
        let per: Vec<f64> = est.per_metric().values().map(|e| e.merged).collect();
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(est.throughput(), min);
    }

    #[test]
    fn time_weighted_average_matches_eq_1() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // Two stalls samples with different periods: one at I=1 (est 1) for
        // 30 time units, one at I=10 (est 3) for 10 time units.
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 30.0, 30.0, 30.0)); // I 1
        wl.push(s("stalls", 10.0, 100.0, 10.0)); // I 10
        let est = model.estimate(&wl).unwrap();
        let m = &est.per_metric()[&MetricId::new("stalls")];
        // (30*1 + 10*3) / 40 = 1.5
        assert!((m.merged - 1.5).abs() < 1e-9, "got {}", m.merged);
        assert_eq!(m.sample_count, 2);
        assert_eq!(m.total_time, 40.0);
    }

    #[test]
    fn unweighted_merge_ignores_period_lengths() {
        let config = TrainConfig {
            merge: MergeStrategy::Unweighted,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 30.0, 30.0, 30.0)); // I 1 -> 1
        wl.push(s("stalls", 10.0, 100.0, 10.0)); // I 10 -> 3
        let est = model.estimate(&wl).unwrap();
        let m = &est.per_metric()[&MetricId::new("stalls")];
        assert!((m.merged - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_aggregation_averages_metrics() {
        let config = TrainConfig {
            aggregation: EnsembleAggregation::Mean,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        wl.push(s("hits", 10.0, 20.0, 20.0));
        let est = model.estimate(&wl).unwrap();
        let per: Vec<f64> = est.per_metric().values().map(|e| e.merged).collect();
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!((est.throughput() - mean).abs() < 1e-12);
    }

    #[test]
    fn unknown_workload_metrics_are_ignored() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        wl.push(s("untrained", 10.0, 20.0, 5.0));
        let est = model.estimate(&wl).unwrap();
        assert_eq!(est.per_metric().len(), 1);
    }

    #[test]
    fn no_common_metrics_errors() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("untrained", 10.0, 20.0, 5.0));
        assert!(matches!(
            model.estimate(&wl).unwrap_err(),
            SpireError::NoCommonMetrics
        ));
    }

    #[test]
    fn empty_workload_errors() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert!(matches!(
            model.estimate(&SampleSet::new()).unwrap_err(),
            SpireError::EmptyWorkload
        ));
    }

    #[test]
    fn ranking_is_ascending_and_deterministic() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 10.0, 10.0)); // I 1 -> 1
        wl.push(s("hits", 10.0, 30.0, 30.0)); // I 1 -> 3
        let est = model.estimate(&wl).unwrap();
        let ranked = est.ranked();
        assert_eq!(ranked[0].0.as_str(), "stalls");
        assert!(ranked[0].1.merged <= ranked[1].1.merged);
        assert_eq!(est.primary_bottleneck().unwrap().0.as_str(), "stalls");
    }

    #[test]
    fn zero_min_samples_config_is_rejected() {
        let config = TrainConfig {
            min_samples_per_metric: 0,
            ..TrainConfig::default()
        };
        assert!(SpireModel::train(&training(), config).is_err());
    }

    #[test]
    fn parallel_training_is_identical_to_serial() {
        // 12 metrics x 40 samples, varied shapes; any thread count must
        // produce the same ensemble and the same estimates, bit for bit.
        let mut set = SampleSet::new();
        for m in 0..12 {
            for i in 0..40 {
                let t = 10.0 + (i % 7) as f64;
                let w = 5.0 + ((i * m) % 13) as f64;
                let delta = (i % 5) as f64; // includes M = 0 rows
                set.push(s(&format!("metric_{m:02}"), t, w, delta));
            }
        }
        let serial_cfg = TrainConfig {
            threads: 1,
            ..TrainConfig::default()
        };
        let serial = SpireModel::train(&set, serial_cfg).unwrap();
        let wl: SampleSet = set.clone();
        let serial_est = serial.estimate(&wl).unwrap();
        for threads in [0, 2, 3, 8] {
            let cfg = TrainConfig {
                threads,
                ..TrainConfig::default()
            };
            let par = SpireModel::train(&set, cfg).unwrap();
            assert_eq!(serial.rooflines(), par.rooflines(), "threads = {threads}");
            let par_est = par.estimate(&wl).unwrap();
            assert_eq!(serial_est.per_metric(), par_est.per_metric());
            assert_eq!(serial_est.throughput(), par_est.throughput());
        }
    }

    #[test]
    fn zero_weight_workload_is_a_typed_error() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // Zero times cannot be built through Sample::new; deserialization
        // bypasses that validation, which is exactly the hole the typed
        // error guards.
        let wl: SampleSet = serde_json::from_str(
            r#"{"samples":[{"metric":"stalls","time":0.0,"work":1.0,"metric_delta":1.0}]}"#,
        )
        .unwrap();
        match model.estimate(&wl).unwrap_err() {
            SpireError::DegenerateWeights { metric } => assert_eq!(metric, "stalls"),
            other => panic!("expected DegenerateWeights, got {other:?}"),
        }
    }

    #[test]
    fn top_metrics_matches_ranked_prefix_with_ties() {
        // Many metrics, several with identical merged estimates, so the
        // partial selection must reproduce the full sort's name
        // tie-breaking exactly.
        let mut set = SampleSet::new();
        for m in 0..20 {
            // Metrics come in tie groups of four: same samples -> same fit
            // -> same merged estimate.
            let group = m / 4;
            for i in 0..5 {
                let w = 10.0 + (group * 7 + i) as f64;
                set.push(s(&format!("tied_{m:02}"), 10.0, w, 2.0));
            }
        }
        let model = SpireModel::train(&set, TrainConfig::default()).unwrap();
        let est = model.estimate(&set).unwrap();
        let ranked = est.ranked();
        for k in [0, 1, 3, 4, 7, 19, 20, 25] {
            let top = est.top_metrics(k);
            assert_eq!(top.len(), k.min(ranked.len()));
            for (got, want) in top.iter().zip(&ranked) {
                assert_eq!(got.0, want.0, "k = {k}");
                assert_eq!(got.1, want.1.merged, "k = {k}");
            }
        }
    }

    #[test]
    fn train_config_without_threads_field_deserializes_to_auto() {
        // Configurations persisted before the `threads` knob existed.
        let json = serde_json::to_string(&TrainConfig::default()).unwrap();
        assert!(json.contains("\"threads\""));
        let legacy = r#"{"fit":{"right_fit":"Graph","auto_trend_threshold":-0.1,
            "max_front_size":256},"min_samples_per_metric":1,
            "merge":"TimeWeighted","aggregation":"Min"}"#;
        let cfg: TrainConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg, TrainConfig::default());
    }

    #[test]
    fn model_serde_round_trip_preserves_estimates() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: SpireModel = serde_json::from_str(&json).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        let a = model.estimate(&wl).unwrap();
        let b = back.estimate(&wl).unwrap();
        assert_eq!(a.throughput(), b.throughput());
    }
}
