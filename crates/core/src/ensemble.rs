//! The SPIRE ensemble (paper Section III-C): one roofline per metric,
//! merged per-sample estimates, and the ensemble-wide minimum.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};
use crate::roofline::{FitOptions, PiecewiseRoofline};
use crate::sample::{MetricId, SampleSet};
#[cfg(test)]
use crate::sample::Sample;

/// How per-sample estimates are merged into one value per metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MergeStrategy {
    /// The paper's Eq. (1): a time-weighted average over the samples'
    /// period lengths.
    #[default]
    TimeWeighted,
    /// An unweighted arithmetic mean (ablation baseline).
    Unweighted,
}

/// How per-metric averages are reduced to the ensemble-wide estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EnsembleAggregation {
    /// The paper's choice: the minimum over metrics, mirroring the
    /// `min(π, βI)` of a conventional roofline.
    #[default]
    Min,
    /// The mean over metrics (ablation baseline; loses the bounding
    /// interpretation but shows why `min` matters).
    Mean,
}

/// Configuration for [`SpireModel::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Options passed to every per-metric roofline fit.
    pub fit: FitOptions,
    /// Metrics with fewer training samples than this are skipped (with no
    /// error) rather than fitted from unrepresentative data. Must be at
    /// least 1.
    pub min_samples_per_metric: usize,
    /// How per-sample estimates merge into a per-metric value.
    pub merge: MergeStrategy,
    /// How per-metric values reduce to the ensemble estimate.
    pub aggregation: EnsembleAggregation,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            fit: FitOptions::default(),
            min_samples_per_metric: 1,
            merge: MergeStrategy::TimeWeighted,
            aggregation: EnsembleAggregation::Min,
        }
    }
}

impl TrainConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidConfig`] if `min_samples_per_metric` is
    /// zero or the fit options are invalid.
    pub fn validate(&self) -> Result<()> {
        self.fit.validate()?;
        if self.min_samples_per_metric == 0 {
            return Err(SpireError::InvalidConfig {
                field: "min_samples_per_metric",
                reason: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// The merged estimate one metric produced for a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEstimate {
    /// The merged (time-weighted by default) throughput estimate `P̄_x`.
    pub merged: f64,
    /// Number of workload samples that contributed.
    pub sample_count: usize,
    /// Total measurement time of the contributing samples.
    pub total_time: f64,
    /// Smallest single-sample estimate (diagnostic).
    pub min_sample_estimate: f64,
    /// Largest single-sample estimate (diagnostic).
    pub max_sample_estimate: f64,
}

/// A workload's throughput estimate from a trained [`SpireModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    per_metric: BTreeMap<MetricId, MetricEstimate>,
    throughput: f64,
    aggregation: EnsembleAggregation,
}

impl Estimate {
    /// The ensemble-wide throughput estimate (the minimum of the per-metric
    /// merged estimates under the default aggregation).
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Per-metric merged estimates, keyed by metric.
    pub fn per_metric(&self) -> &BTreeMap<MetricId, MetricEstimate> {
        &self.per_metric
    }

    /// Metrics ranked ascending by merged estimate: the head of this list
    /// holds the most likely bottlenecks.
    ///
    /// Ties are broken by metric name for determinism.
    pub fn ranked(&self) -> Vec<(&MetricId, &MetricEstimate)> {
        let mut v: Vec<_> = self.per_metric.iter().collect();
        v.sort_by(|a, b| {
            a.1.merged
                .total_cmp(&b.1.merged)
                .then_with(|| a.0.cmp(b.0))
        });
        v
    }

    /// The `k` lowest-estimate metrics (the paper's "top metrics").
    pub fn top_metrics(&self, k: usize) -> Vec<(&MetricId, f64)> {
        self.ranked()
            .into_iter()
            .take(k)
            .map(|(m, e)| (m, e.merged))
            .collect()
    }

    /// The metric with the lowest merged estimate, if any.
    pub fn primary_bottleneck(&self) -> Option<(&MetricId, f64)> {
        self.top_metrics(1).into_iter().next()
    }

    /// Which aggregation produced [`Estimate::throughput`].
    pub fn aggregation(&self) -> EnsembleAggregation {
        self.aggregation
    }
}

/// A trained SPIRE model: an ensemble of per-metric rooflines.
///
/// ```
/// use spire_core::{Sample, SampleSet, SpireModel, TrainConfig};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut training = SampleSet::new();
/// for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 2.0)] {
///     training.push(Sample::new("stalls", 10.0, w, m)?);
///     training.push(Sample::new("misses", 10.0, w, m * 0.5)?);
/// }
/// let model = SpireModel::train(&training, TrainConfig::default())?;
///
/// let mut workload = SampleSet::new();
/// workload.push(Sample::new("stalls", 10.0, 12.0, 8.0)?);
/// workload.push(Sample::new("misses", 10.0, 12.0, 1.0)?);
/// let estimate = model.estimate(&workload)?;
/// assert!(estimate.throughput() <= 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpireModel {
    rooflines: BTreeMap<MetricId, PiecewiseRoofline>,
    config: TrainConfig,
    skipped_metrics: Vec<MetricId>,
}

impl SpireModel {
    /// Trains an ensemble from `samples`: groups them by metric and fits
    /// one roofline per metric (paper Fig. 3).
    ///
    /// Metrics with fewer than
    /// [`min_samples_per_metric`](TrainConfig::min_samples_per_metric)
    /// samples are recorded in [`SpireModel::skipped_metrics`] and excluded
    /// from the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyTrainingSet`] if `samples` is empty or no
    /// metric reaches the minimum sample count, and
    /// [`SpireError::InvalidConfig`] for invalid configuration.
    pub fn train(samples: &SampleSet, config: TrainConfig) -> Result<Self> {
        config.validate()?;
        if samples.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        let mut rooflines = BTreeMap::new();
        let mut skipped = Vec::new();
        for (metric, group) in samples.by_metric() {
            if group.len() < config.min_samples_per_metric {
                skipped.push(metric.clone());
                continue;
            }
            let roofline =
                PiecewiseRoofline::fit(metric.clone(), group, &config.fit)?;
            rooflines.insert(metric.clone(), roofline);
        }
        if rooflines.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        Ok(SpireModel {
            rooflines,
            config,
            skipped_metrics: skipped,
        })
    }

    /// Estimates a workload's maximum attainable throughput (paper Fig. 4):
    /// per-sample roofline estimates, merged per metric (Eq. 1), reduced
    /// over metrics.
    ///
    /// Workload metrics the model was not trained on are ignored; metrics
    /// in the model but absent from the workload contribute nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyWorkload`] if `workload` has no samples
    /// and [`SpireError::NoCommonMetrics`] if no workload sample belongs to
    /// a trained metric.
    pub fn estimate(&self, workload: &SampleSet) -> Result<Estimate> {
        if workload.is_empty() {
            return Err(SpireError::EmptyWorkload);
        }
        let mut per_metric = BTreeMap::new();
        for (metric, group) in workload.by_metric() {
            let Some(roofline) = self.rooflines.get(metric) else {
                continue;
            };
            let mut weighted_sum = 0.0;
            let mut weight_total = 0.0;
            let mut min_e = f64::INFINITY;
            let mut max_e = f64::NEG_INFINITY;
            let mut total_time = 0.0;
            for s in &group {
                let e = roofline.estimate_sample(s);
                let w = match self.config.merge {
                    MergeStrategy::TimeWeighted => s.time(),
                    MergeStrategy::Unweighted => 1.0,
                };
                weighted_sum += w * e;
                weight_total += w;
                min_e = min_e.min(e);
                max_e = max_e.max(e);
                total_time += s.time();
            }
            debug_assert!(weight_total > 0.0, "samples have positive time");
            per_metric.insert(
                metric.clone(),
                MetricEstimate {
                    merged: weighted_sum / weight_total,
                    sample_count: group.len(),
                    total_time,
                    min_sample_estimate: min_e,
                    max_sample_estimate: max_e,
                },
            );
        }
        if per_metric.is_empty() {
            return Err(SpireError::NoCommonMetrics);
        }
        let throughput = match self.config.aggregation {
            EnsembleAggregation::Min => per_metric
                .values()
                .map(|e| e.merged)
                .fold(f64::INFINITY, f64::min),
            EnsembleAggregation::Mean => {
                per_metric.values().map(|e| e.merged).sum::<f64>() / per_metric.len() as f64
            }
        };
        Ok(Estimate {
            per_metric,
            throughput,
            aggregation: self.config.aggregation,
        })
    }

    /// The trained per-metric rooflines.
    pub fn rooflines(&self) -> &BTreeMap<MetricId, PiecewiseRoofline> {
        &self.rooflines
    }

    /// The roofline for one metric, if trained.
    pub fn roofline(&self, metric: &MetricId) -> Option<&PiecewiseRoofline> {
        self.rooflines.get(metric)
    }

    /// Metrics that were skipped during training for having too few
    /// samples.
    pub fn skipped_metrics(&self) -> &[MetricId] {
        &self.skipped_metrics
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Number of metrics in the ensemble.
    pub fn metric_count(&self) -> usize {
        self.rooflines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    fn training() -> SampleSet {
        let mut set = SampleSet::new();
        // "stalls": throughput rises with instructions-per-stall.
        set.push(s("stalls", 10.0, 10.0, 10.0)); // I 1, P 1
        set.push(s("stalls", 10.0, 20.0, 5.0)); // I 4, P 2
        set.push(s("stalls", 10.0, 30.0, 3.0)); // I 10, P 3
        // "hits": positively associated; throughput falls as hits thin out.
        set.push(s("hits", 10.0, 30.0, 30.0)); // I 1, P 3
        set.push(s("hits", 10.0, 20.0, 4.0)); // I 5, P 2
        set.push(s("hits", 10.0, 10.0, 1.0)); // I 10, P 1
        set
    }

    #[test]
    fn train_groups_by_metric() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert_eq!(model.metric_count(), 2);
        assert!(model.roofline(&MetricId::new("stalls")).is_some());
        assert!(model.roofline(&MetricId::new("hits")).is_some());
    }

    #[test]
    fn empty_training_set_errors() {
        let err = SpireModel::train(&SampleSet::new(), TrainConfig::default()).unwrap_err();
        assert!(matches!(err, SpireError::EmptyTrainingSet { metric: None }));
    }

    #[test]
    fn min_samples_filter_skips_sparse_metrics() {
        let mut set = training();
        set.push(s("rare", 10.0, 10.0, 1.0));
        let config = TrainConfig {
            min_samples_per_metric: 2,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&set, config).unwrap();
        assert_eq!(model.metric_count(), 2);
        assert_eq!(model.skipped_metrics(), [MetricId::new("rare")]);
    }

    #[test]
    fn estimate_is_min_of_per_metric_averages() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0)); // I 4 -> ~2
        wl.push(s("hits", 10.0, 20.0, 20.0)); // I 1 -> ~3
        let est = model.estimate(&wl).unwrap();
        let per: Vec<f64> = est.per_metric().values().map(|e| e.merged).collect();
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(est.throughput(), min);
    }

    #[test]
    fn time_weighted_average_matches_eq_1() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // Two stalls samples with different periods: one at I=1 (est 1) for
        // 30 time units, one at I=10 (est 3) for 10 time units.
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 30.0, 30.0, 30.0)); // I 1
        wl.push(s("stalls", 10.0, 100.0, 10.0)); // I 10
        let est = model.estimate(&wl).unwrap();
        let m = &est.per_metric()[&MetricId::new("stalls")];
        // (30*1 + 10*3) / 40 = 1.5
        assert!((m.merged - 1.5).abs() < 1e-9, "got {}", m.merged);
        assert_eq!(m.sample_count, 2);
        assert_eq!(m.total_time, 40.0);
    }

    #[test]
    fn unweighted_merge_ignores_period_lengths() {
        let config = TrainConfig {
            merge: MergeStrategy::Unweighted,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 30.0, 30.0, 30.0)); // I 1 -> 1
        wl.push(s("stalls", 10.0, 100.0, 10.0)); // I 10 -> 3
        let est = model.estimate(&wl).unwrap();
        let m = &est.per_metric()[&MetricId::new("stalls")];
        assert!((m.merged - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_aggregation_averages_metrics() {
        let config = TrainConfig {
            aggregation: EnsembleAggregation::Mean,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        wl.push(s("hits", 10.0, 20.0, 20.0));
        let est = model.estimate(&wl).unwrap();
        let per: Vec<f64> = est.per_metric().values().map(|e| e.merged).collect();
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!((est.throughput() - mean).abs() < 1e-12);
    }

    #[test]
    fn unknown_workload_metrics_are_ignored() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        wl.push(s("untrained", 10.0, 20.0, 5.0));
        let est = model.estimate(&wl).unwrap();
        assert_eq!(est.per_metric().len(), 1);
    }

    #[test]
    fn no_common_metrics_errors() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("untrained", 10.0, 20.0, 5.0));
        assert!(matches!(
            model.estimate(&wl).unwrap_err(),
            SpireError::NoCommonMetrics
        ));
    }

    #[test]
    fn empty_workload_errors() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert!(matches!(
            model.estimate(&SampleSet::new()).unwrap_err(),
            SpireError::EmptyWorkload
        ));
    }

    #[test]
    fn ranking_is_ascending_and_deterministic() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 10.0, 10.0)); // I 1 -> 1
        wl.push(s("hits", 10.0, 30.0, 30.0)); // I 1 -> 3
        let est = model.estimate(&wl).unwrap();
        let ranked = est.ranked();
        assert_eq!(ranked[0].0.as_str(), "stalls");
        assert!(ranked[0].1.merged <= ranked[1].1.merged);
        assert_eq!(
            est.primary_bottleneck().unwrap().0.as_str(),
            "stalls"
        );
    }

    #[test]
    fn zero_min_samples_config_is_rejected() {
        let config = TrainConfig {
            min_samples_per_metric: 0,
            ..TrainConfig::default()
        };
        assert!(SpireModel::train(&training(), config).is_err());
    }

    #[test]
    fn model_serde_round_trip_preserves_estimates() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: SpireModel = serde_json::from_str(&json).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        let a = model.estimate(&wl).unwrap();
        let b = back.estimate(&wl).unwrap();
        assert_eq!(a.throughput(), b.throughput());
    }
}
