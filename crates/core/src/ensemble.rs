//! The SPIRE ensemble (paper Section III-C): one roofline per metric,
//! merged per-sample estimates, and the ensemble-wide minimum.
//!
//! Both training and estimation fan their per-metric work (one roofline
//! fit, or one Eq. (1) merge, per metric) across [`crate::parallel`]
//! worker threads when [`TrainConfig::threads`] allows. Results are
//! collected in metric-name order regardless of scheduling, so parallel
//! runs are bit-identical to serial ones.

use std::collections::BTreeMap;

use serde::de::Deserializer;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};
use crate::parallel;
use crate::roofline::{FitOptions, PiecewiseRoofline, ThinningNotice};
#[cfg(test)]
use crate::sample::Sample;
use crate::sample::{MetricColumn, MetricId, SampleSet};

/// How per-sample estimates are merged into one value per metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MergeStrategy {
    /// The paper's Eq. (1): a time-weighted average over the samples'
    /// period lengths.
    #[default]
    TimeWeighted,
    /// An unweighted arithmetic mean (ablation baseline).
    Unweighted,
}

/// How per-metric averages are reduced to the ensemble-wide estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EnsembleAggregation {
    /// The paper's choice: the minimum over metrics, mirroring the
    /// `min(π, βI)` of a conventional roofline.
    #[default]
    Min,
    /// The mean over metrics (ablation baseline; loses the bounding
    /// interpretation but shows why `min` matters).
    Mean,
}

/// Configuration for [`SpireModel::train`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainConfig {
    /// Options passed to every per-metric roofline fit.
    pub fit: FitOptions,
    /// Metrics with fewer training samples than this are skipped (with no
    /// error) rather than fitted from unrepresentative data. Must be at
    /// least 1.
    pub min_samples_per_metric: usize,
    /// How per-sample estimates merge into a per-metric value.
    pub merge: MergeStrategy,
    /// How per-metric values reduce to the ensemble estimate.
    pub aggregation: EnsembleAggregation,
    /// Worker threads for the per-metric fit/estimate fan-out: `0` (the
    /// default) uses [`parallel::available_parallelism`], `1` forces the
    /// serial path, anything else caps the worker count. Results are
    /// identical at every setting; this is purely a throughput knob.
    pub threads: usize,
    /// Fault-isolated training ([`SpireModel::train_with_report`]) tolerates
    /// quarantined metrics up to this fraction of the metrics it attempted
    /// to fit; beyond it, lenient training fails with
    /// [`SpireError::ErrorBudgetExceeded`]. Must lie in `[0, 1]`.
    /// Default `0.5`, mirroring the ingest layer's budget.
    pub metric_error_budget: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            fit: FitOptions::default(),
            min_samples_per_metric: 1,
            merge: MergeStrategy::TimeWeighted,
            aggregation: EnsembleAggregation::Min,
            threads: 0,
            metric_error_budget: 0.5,
        }
    }
}

/// Manual impl so configurations serialized before the `threads` and
/// `metric_error_budget` fields existed still deserialize (a missing
/// `threads` means `0` = auto; a missing budget means the default `0.5`).
impl<'de> Deserialize<'de> for TrainConfig {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Wire {
            fit: FitOptions,
            min_samples_per_metric: usize,
            merge: MergeStrategy,
            aggregation: EnsembleAggregation,
            threads: Option<usize>,
            metric_error_budget: Option<f64>,
        }
        let w = Wire::deserialize(deserializer)?;
        Ok(TrainConfig {
            fit: w.fit,
            min_samples_per_metric: w.min_samples_per_metric,
            merge: w.merge,
            aggregation: w.aggregation,
            threads: w.threads.unwrap_or(0),
            metric_error_budget: w.metric_error_budget.unwrap_or(0.5),
        })
    }
}

impl TrainConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidConfig`] if `min_samples_per_metric` is
    /// zero, `metric_error_budget` is outside `[0, 1]`, or the fit options
    /// are invalid.
    pub fn validate(&self) -> Result<()> {
        self.fit.validate()?;
        if self.min_samples_per_metric == 0 {
            return Err(SpireError::InvalidConfig {
                field: "min_samples_per_metric",
                reason: "must be at least 1".to_owned(),
            });
        }
        if !(0.0..=1.0).contains(&self.metric_error_budget) {
            return Err(SpireError::InvalidConfig {
                field: "metric_error_budget",
                reason: format!("must be within [0, 1], got {}", self.metric_error_budget),
            });
        }
        Ok(())
    }
}

/// Whether fault-isolated training tolerates quarantined metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainStrictness {
    /// Quarantine failing metrics (up to
    /// [`TrainConfig::metric_error_budget`]) and train on the survivors.
    #[default]
    Lenient,
    /// Fail fast with the first failing metric's typed error.
    Strict,
}

/// Why a metric was quarantined during fault-isolated training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TrainQuarantineReason {
    /// The fit panicked; the panic was contained to this metric.
    FitPanicked,
    /// The fit returned a typed error.
    FitFailed,
    /// The fit returned a roofline that failed
    /// [`PiecewiseRoofline::validate`].
    InvariantViolation,
}

impl TrainQuarantineReason {
    /// Stable snake_case key for reports and tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            TrainQuarantineReason::FitPanicked => "fit_panicked",
            TrainQuarantineReason::FitFailed => "fit_failed",
            TrainQuarantineReason::InvariantViolation => "invariant_violation",
        }
    }
}

/// One metric excluded from the ensemble by fault-isolated training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedMetric {
    /// The metric that failed.
    pub metric: MetricId,
    /// Why it was quarantined.
    pub reason: TrainQuarantineReason,
    /// Human-readable detail: the fit error, panic message, or violated
    /// invariant.
    pub detail: String,
}

/// What fault-isolated training did: the training-side mirror of the
/// ingest layer's `IngestReport`.
///
/// Produced by [`SpireModel::train_with_report`]; persisted (as a summary)
/// into model snapshots so a degraded model stays honestly labeled.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Distinct metrics in the training set.
    pub metrics_seen: usize,
    /// Metrics that produced a validated roofline.
    pub metrics_trained: usize,
    /// Metrics skipped for having fewer than
    /// [`TrainConfig::min_samples_per_metric`] samples (not a fault).
    pub metrics_skipped: usize,
    /// Metrics excluded by the quarantine, in metric-name order.
    pub quarantined: Vec<QuarantinedMetric>,
    /// The budget the run was held to
    /// ([`TrainConfig::metric_error_budget`]).
    pub error_budget: f64,
}

impl TrainReport {
    /// Quarantined metrics as a fraction of the metrics the run attempted
    /// to fit (seen minus skipped). `0.0` when nothing was attempted.
    pub fn quarantined_fraction(&self) -> f64 {
        let attempted = self.metrics_trained + self.quarantined.len();
        if attempted == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / attempted as f64
        }
    }

    /// Returns `true` if the quarantined fraction exceeds the budget.
    pub fn budget_exceeded(&self) -> bool {
        self.quarantined_fraction() > self.error_budget
    }

    /// Returns `true` if any metric was quarantined (the model is usable
    /// but degraded).
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Quarantine counts grouped by reason key (see
    /// [`TrainQuarantineReason::as_str`]), in key order.
    pub fn by_reason(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for q in &self.quarantined {
            *counts.entry(q.reason.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// One-line summary, e.g.
    /// `trained 10/12 metrics (1 skipped, 1 quarantined: fit_panicked 1)`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "trained {}/{} metrics ({} skipped, {} quarantined",
            self.metrics_trained,
            self.metrics_seen,
            self.metrics_skipped,
            self.quarantined.len()
        );
        if !self.quarantined.is_empty() {
            s.push_str(": ");
            let parts: Vec<String> = self
                .by_reason()
                .into_iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect();
            s.push_str(&parts.join(", "));
        }
        s.push(')');
        s
    }

    /// Multi-line report: the summary plus up to `max_details` quarantined
    /// metrics with their reasons.
    pub fn to_table(&self, max_details: usize) -> String {
        let mut out = self.summary();
        for q in self.quarantined.iter().take(max_details) {
            out.push_str(&format!(
                "\n  quarantined {} [{}]: {}",
                q.metric.as_str(),
                q.reason.as_str(),
                q.detail
            ));
        }
        if self.quarantined.len() > max_details {
            out.push_str(&format!(
                "\n  ... and {} more",
                self.quarantined.len() - max_details
            ));
        }
        out
    }
}

/// A trained model together with the [`TrainReport`] describing how the
/// training run degraded, if at all.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// The (possibly degraded) ensemble over the surviving metrics.
    pub model: SpireModel,
    /// What happened to every metric.
    pub report: TrainReport,
    /// Lossy front-thinning decisions the fits made (only with
    /// [`FitOptions::thin_front`]), in metric-name order. Lives here and
    /// not in [`TrainReport`] because the report is persisted inside
    /// snapshots, whose serialized bytes must stay stable.
    pub fit_notices: Vec<ThinningNotice>,
}

/// The merged estimate one metric produced for a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEstimate {
    /// The merged (time-weighted by default) throughput estimate `P̄_x`.
    pub merged: f64,
    /// Number of workload samples that contributed.
    pub sample_count: usize,
    /// Total measurement time of the contributing samples.
    pub total_time: f64,
    /// Smallest single-sample estimate (diagnostic).
    pub min_sample_estimate: f64,
    /// Largest single-sample estimate (diagnostic).
    pub max_sample_estimate: f64,
}

/// A workload's throughput estimate from a trained [`SpireModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    per_metric: BTreeMap<MetricId, MetricEstimate>,
    throughput: f64,
    aggregation: EnsembleAggregation,
}

impl Estimate {
    /// The ensemble-wide throughput estimate (the minimum of the per-metric
    /// merged estimates under the default aggregation).
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Per-metric merged estimates, keyed by metric.
    pub fn per_metric(&self) -> &BTreeMap<MetricId, MetricEstimate> {
        &self.per_metric
    }

    /// Metrics ranked ascending by merged estimate: the head of this list
    /// holds the most likely bottlenecks.
    ///
    /// Ties are broken by metric name for determinism.
    pub fn ranked(&self) -> Vec<(&MetricId, &MetricEstimate)> {
        let mut v: Vec<_> = self.per_metric.iter().collect();
        v.sort_by(Self::rank_order);
        v
    }

    /// The `k` lowest-estimate metrics (the paper's "top metrics").
    ///
    /// Uses partial selection — `O(n + k log k)` rather than a full
    /// `O(n log n)` sort — since the typical query asks for the top ~15 of
    /// the paper's 424 metrics. The result and its tie-breaking (ascending
    /// merged estimate, then metric name) are identical to taking the
    /// first `k` entries of [`Estimate::ranked`].
    pub fn top_metrics(&self, k: usize) -> Vec<(&MetricId, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut v: Vec<_> = self.per_metric.iter().collect();
        if k < v.len() {
            v.select_nth_unstable_by(k - 1, Self::rank_order);
            v.truncate(k);
        }
        v.sort_by(Self::rank_order);
        v.into_iter().map(|(m, e)| (m, e.merged)).collect()
    }

    /// Total order used by [`Estimate::ranked`] and
    /// [`Estimate::top_metrics`]: ascending merged estimate, ties broken
    /// by metric name.
    fn rank_order(
        a: &(&MetricId, &MetricEstimate),
        b: &(&MetricId, &MetricEstimate),
    ) -> std::cmp::Ordering {
        a.1.merged.total_cmp(&b.1.merged).then_with(|| a.0.cmp(b.0))
    }

    /// The metric with the lowest merged estimate, if any.
    pub fn primary_bottleneck(&self) -> Option<(&MetricId, f64)> {
        self.top_metrics(1).into_iter().next()
    }

    /// Which aggregation produced [`Estimate::throughput`].
    pub fn aggregation(&self) -> EnsembleAggregation {
        self.aggregation
    }
}

/// A trained SPIRE model: an ensemble of per-metric rooflines.
///
/// ```
/// use spire_core::{Sample, SampleSet, SpireModel, TrainConfig};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let mut training = SampleSet::new();
/// for (w, m) in [(10.0, 10.0), (20.0, 5.0), (30.0, 2.0)] {
///     training.push(Sample::new("stalls", 10.0, w, m)?);
///     training.push(Sample::new("misses", 10.0, w, m * 0.5)?);
/// }
/// let model = SpireModel::train(&training, TrainConfig::default())?;
///
/// let mut workload = SampleSet::new();
/// workload.push(Sample::new("stalls", 10.0, 12.0, 8.0)?);
/// workload.push(Sample::new("misses", 10.0, 12.0, 1.0)?);
/// let estimate = model.estimate(&workload)?;
/// assert!(estimate.throughput() <= 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpireModel {
    rooflines: BTreeMap<MetricId, PiecewiseRoofline>,
    config: TrainConfig,
    skipped_metrics: Vec<MetricId>,
}

impl SpireModel {
    /// Trains an ensemble from `samples`: groups them by metric and fits
    /// one roofline per metric (paper Fig. 3).
    ///
    /// Metrics with fewer than
    /// [`min_samples_per_metric`](TrainConfig::min_samples_per_metric)
    /// samples are recorded in [`SpireModel::skipped_metrics`] and excluded
    /// from the ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyTrainingSet`] if `samples` is empty or no
    /// metric reaches the minimum sample count, and
    /// [`SpireError::InvalidConfig`] for invalid configuration.
    pub fn train(samples: &SampleSet, config: TrainConfig) -> Result<Self> {
        Ok(Self::train_with_report(samples, config, TrainStrictness::Strict)?.model)
    }

    /// Fault-isolated training: like [`SpireModel::train`], but failing
    /// metrics are contained at the per-metric boundary instead of tearing
    /// the run down.
    ///
    /// Each fit runs under [`parallel::map_catching`], so a metric whose
    /// fit panics (or returns an error, or produces a roofline that fails
    /// [`PiecewiseRoofline::validate`]) is *quarantined* into the returned
    /// [`TrainReport`] and the ensemble is built from the survivors. In
    /// [`TrainStrictness::Strict`] mode the first failing metric's typed
    /// error is returned instead (panics become
    /// [`SpireError::FitPanicked`]).
    ///
    /// # Errors
    ///
    /// Everything [`SpireModel::train`] returns, plus — in lenient mode —
    /// [`SpireError::ErrorBudgetExceeded`] when the quarantined fraction
    /// exceeds [`TrainConfig::metric_error_budget`], and the first
    /// quarantined metric's error when *no* metric survives.
    pub fn train_with_report(
        samples: &SampleSet,
        config: TrainConfig,
        strictness: TrainStrictness,
    ) -> Result<TrainOutcome> {
        Self::train_with_report_logged(samples, config, strictness, |column, fit| {
            PiecewiseRoofline::fit_column_logged(column, fit)
        })
    }

    /// [`SpireModel::train_with_report`] with a caller-supplied fit
    /// function in place of [`PiecewiseRoofline::fit_column`].
    ///
    /// This is the seam for custom fitters and for the fault-injection
    /// harness ([`crate::fault`]), which substitutes fits that panic or
    /// err on chosen metrics to drive every quarantine path
    /// deterministically.
    pub fn train_with_report_using<F>(
        samples: &SampleSet,
        config: TrainConfig,
        strictness: TrainStrictness,
        fit_fn: F,
    ) -> Result<TrainOutcome>
    where
        F: Fn(&MetricColumn, &FitOptions) -> Result<PiecewiseRoofline> + Sync,
    {
        Self::train_with_report_logged(samples, config, strictness, |column, options| {
            fit_fn(column, options).map(|fit| (fit, None))
        })
    }

    /// The shared fault-isolated training loop: like
    /// [`SpireModel::train_with_report_using`], but the fit function also
    /// reports any lossy [`ThinningNotice`] it made, which is collected
    /// (in metric-name order) into [`TrainOutcome::fit_notices`].
    fn train_with_report_logged<F>(
        samples: &SampleSet,
        config: TrainConfig,
        strictness: TrainStrictness,
        fit_fn: F,
    ) -> Result<TrainOutcome>
    where
        F: Fn(&MetricColumn, &FitOptions) -> Result<(PiecewiseRoofline, Option<ThinningNotice>)>
            + Sync,
    {
        config.validate()?;
        if samples.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        let mut skipped = Vec::new();
        let mut jobs: Vec<&MetricColumn> = Vec::new();
        for (metric, column) in samples.by_metric() {
            if column.len() < config.min_samples_per_metric {
                skipped.push(metric.clone());
            } else {
                jobs.push(column);
            }
        }
        if jobs.is_empty() {
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        let metrics_seen = skipped.len() + jobs.len();

        // Fan the independent per-metric fits across workers with per-item
        // panic containment; results come back in job (metric-name) order,
        // so the ensemble — and the quarantine order — is identical to a
        // serial build.
        let fitted =
            parallel::map_catching(&jobs, config.threads, |column| fit_fn(column, &config.fit));

        let mut rooflines = BTreeMap::new();
        let mut quarantined: Vec<QuarantinedMetric> = Vec::new();
        let mut fit_notices: Vec<ThinningNotice> = Vec::new();
        for (column, outcome) in jobs.iter().zip(fitted) {
            let metric = column.metric().clone();
            // Flatten the three failure channels (panic, fit error,
            // invariant violation) into one typed error per metric.
            let checked: Result<(PiecewiseRoofline, Option<ThinningNotice>)> = match outcome {
                Err(message) => Err(SpireError::FitPanicked {
                    metric: metric.to_string(),
                    message,
                }),
                Ok(Err(e)) => Err(e),
                Ok(Ok((fit, notice))) => fit.validate().map(|()| (fit, notice)),
            };
            match checked {
                Ok((fit, notice)) => {
                    rooflines.insert(metric, fit);
                    fit_notices.extend(notice);
                }
                Err(e) => {
                    if strictness == TrainStrictness::Strict {
                        return Err(e);
                    }
                    quarantined.push(QuarantinedMetric {
                        metric,
                        reason: match &e {
                            SpireError::FitPanicked { .. } => TrainQuarantineReason::FitPanicked,
                            SpireError::ModelInvariantViolation { .. } => {
                                TrainQuarantineReason::InvariantViolation
                            }
                            _ => TrainQuarantineReason::FitFailed,
                        },
                        detail: e.to_string(),
                    });
                }
            }
        }

        let report = TrainReport {
            metrics_seen,
            metrics_trained: rooflines.len(),
            metrics_skipped: skipped.len(),
            quarantined,
            error_budget: config.metric_error_budget,
        };
        if report.budget_exceeded() {
            return Err(SpireError::ErrorBudgetExceeded {
                quarantined: report.quarantined.len(),
                total: report.metrics_trained + report.quarantined.len(),
                budget: report.error_budget,
            });
        }
        if rooflines.is_empty() {
            // Every attempted metric was quarantined (possible only under a
            // budget of 1.0); a zero-metric ensemble cannot estimate, so
            // surface the first underlying failure rather than a model that
            // errors on every query.
            return Err(SpireError::EmptyTrainingSet { metric: None });
        }
        Ok(TrainOutcome {
            model: SpireModel {
                rooflines,
                config,
                skipped_metrics: skipped,
            },
            report,
            fit_notices,
        })
    }

    /// Reassembles a model from trained parts (the snapshot loader's
    /// constructor).
    pub(crate) fn from_parts(
        rooflines: BTreeMap<MetricId, PiecewiseRoofline>,
        config: TrainConfig,
        skipped_metrics: Vec<MetricId>,
    ) -> Self {
        SpireModel {
            rooflines,
            config,
            skipped_metrics,
        }
    }

    /// Mutable access to the per-metric rooflines, for the online
    /// maintenance layer's in-place patching.
    pub(crate) fn rooflines_mut(&mut self) -> &mut BTreeMap<MetricId, PiecewiseRoofline> {
        &mut self.rooflines
    }

    /// Replaces the skipped-metric list (online maintenance recomputes it
    /// each commit).
    pub(crate) fn set_skipped_metrics(&mut self, skipped_metrics: Vec<MetricId>) {
        self.skipped_metrics = skipped_metrics;
    }

    /// Estimates a workload's maximum attainable throughput (paper Fig. 4):
    /// per-sample roofline estimates, merged per metric (Eq. 1), reduced
    /// over metrics.
    ///
    /// Workload metrics the model was not trained on are ignored; metrics
    /// in the model but absent from the workload contribute nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyWorkload`] if `workload` has no samples,
    /// [`SpireError::NoCommonMetrics`] if no workload sample belongs to
    /// a trained metric, and [`SpireError::DegenerateWeights`] if a
    /// metric's merge weights sum to zero or NaN (possible only for
    /// workload data that bypassed [`Sample::new`] validation, e.g. via
    /// deserialization).
    pub fn estimate(&self, workload: &SampleSet) -> Result<Estimate> {
        if workload.is_empty() {
            return Err(SpireError::EmptyWorkload);
        }
        // Workload metrics the model was not trained on are skipped here;
        // trained metrics absent from the workload simply produce no job.
        let jobs: Vec<(&MetricColumn, &PiecewiseRoofline)> = workload
            .by_metric()
            .filter_map(|(metric, column)| self.rooflines.get(metric).map(|r| (column, r)))
            .collect();
        if jobs.is_empty() {
            return Err(SpireError::NoCommonMetrics);
        }
        let merge = self.config.merge;
        let merged = parallel::map(&jobs, self.config.threads, |(column, roofline)| {
            merge_column(column, roofline, merge)
        });
        let mut per_metric = BTreeMap::new();
        for ((column, _), result) in jobs.iter().zip(merged) {
            per_metric.insert(column.metric().clone(), result?);
        }
        let throughput = match self.config.aggregation {
            EnsembleAggregation::Min => per_metric
                .values()
                .map(|e| e.merged)
                .fold(f64::INFINITY, f64::min),
            EnsembleAggregation::Mean => {
                per_metric.values().map(|e| e.merged).sum::<f64>() / per_metric.len() as f64
            }
        };
        Ok(Estimate {
            per_metric,
            throughput,
            aggregation: self.config.aggregation,
        })
    }

    /// Estimates many workloads in one coalesced pass, returning one
    /// result per workload **in input order**, each bit-identical to
    /// calling [`estimate`](SpireModel::estimate) on that workload alone.
    ///
    /// This is the serving hot path: concurrently-arriving requests for
    /// the same model are merged into larger columns. All requests'
    /// intensity columns for a given metric are concatenated and pushed
    /// through one [`PiecewiseRoofline::estimate_soa`] pass — hoisting the
    /// shape dispatch and boundary loads once per metric per batch rather
    /// than once per metric per request — then split back by range.
    /// `estimate_soa` is elementwise, so the split segments match
    /// per-request passes bit-for-bit, and the per-column merge
    /// accumulation is literally the same loop (`merge_estimates`) the
    /// single-workload path runs.
    ///
    /// Per-workload errors ([`SpireError::EmptyWorkload`],
    /// [`SpireError::NoCommonMetrics`], [`SpireError::DegenerateWeights`])
    /// land in that workload's slot with the same precedence as
    /// `estimate` (first failing metric in column order) and never affect
    /// neighboring workloads in the batch.
    pub fn estimate_batch(&self, workloads: &[&SampleSet]) -> Vec<Result<Estimate>> {
        // Classify each workload up front and group its routed columns by
        // metric across the whole batch.
        let mut results: Vec<Option<Result<Estimate>>> = Vec::with_capacity(workloads.len());
        let mut metric_order: Vec<Vec<&MetricId>> = Vec::with_capacity(workloads.len());
        let mut groups: BTreeMap<&MetricId, Vec<(usize, &MetricColumn)>> = BTreeMap::new();
        for (wi, workload) in workloads.iter().enumerate() {
            if workload.is_empty() {
                results.push(Some(Err(SpireError::EmptyWorkload)));
                metric_order.push(Vec::new());
                continue;
            }
            let mut order = Vec::new();
            for (metric, column) in workload.by_metric() {
                if let Some((metric, _)) = self.rooflines.get_key_value(metric) {
                    groups.entry(metric).or_default().push((wi, column));
                    order.push(metric);
                }
            }
            results.push(if order.is_empty() {
                Some(Err(SpireError::NoCommonMetrics))
            } else {
                None
            });
            metric_order.push(order);
        }

        let merge = self.config.merge;
        /// One parallel work item: a metric, its roofline, and every
        /// (workload index, column) pair that needs it.
        type MetricGroup<'a> = (
            &'a MetricId,
            &'a PiecewiseRoofline,
            Vec<(usize, &'a MetricColumn)>,
        );
        let group_list: Vec<MetricGroup> = groups
            .into_iter()
            .map(|(metric, cols)| (metric, &self.rooflines[metric], cols))
            .collect();
        let merged: Vec<Vec<(usize, Result<MetricEstimate>)>> =
            parallel::map(&group_list, self.config.threads, |(_, roofline, cols)| {
                let total = cols.iter().map(|(_, c)| c.len()).sum();
                let mut concatenated = Vec::with_capacity(total);
                for (_, column) in cols {
                    concatenated.extend_from_slice(column.intensities());
                }
                let mut estimates = Vec::new();
                roofline.estimate_soa(&concatenated, &mut estimates);
                let mut out = Vec::with_capacity(cols.len());
                let mut offset = 0;
                for (wi, column) in cols {
                    let segment = &estimates[offset..offset + column.len()];
                    offset += column.len();
                    out.push((*wi, merge_estimates(segment, column, merge)));
                }
                out
            });

        // Scatter metric results back to their workloads, then assemble
        // each Estimate with the same error precedence and aggregation
        // fold as the single-workload path.
        let mut per_workload: Vec<BTreeMap<&MetricId, Result<MetricEstimate>>> =
            workloads.iter().map(|_| BTreeMap::new()).collect();
        for ((metric, _, _), outs) in group_list.iter().zip(merged) {
            for (wi, result) in outs {
                per_workload[wi].insert(*metric, result);
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(wi, pre)| {
                if let Some(decided) = pre {
                    return decided;
                }
                let mut per_metric = BTreeMap::new();
                for metric in &metric_order[wi] {
                    let result = per_workload[wi]
                        .remove(*metric)
                        .expect("every routed metric was merged");
                    per_metric.insert((*metric).clone(), result?);
                }
                let throughput = match self.config.aggregation {
                    EnsembleAggregation::Min => per_metric
                        .values()
                        .map(|e| e.merged)
                        .fold(f64::INFINITY, f64::min),
                    EnsembleAggregation::Mean => {
                        per_metric.values().map(|e| e.merged).sum::<f64>() / per_metric.len() as f64
                    }
                };
                Ok(Estimate {
                    per_metric,
                    throughput,
                    aggregation: self.config.aggregation,
                })
            })
            .collect()
    }

    /// The trained per-metric rooflines.
    pub fn rooflines(&self) -> &BTreeMap<MetricId, PiecewiseRoofline> {
        &self.rooflines
    }

    /// The roofline for one metric, if trained.
    pub fn roofline(&self, metric: &MetricId) -> Option<&PiecewiseRoofline> {
        self.rooflines.get(metric)
    }

    /// Metrics that were skipped during training for having too few
    /// samples.
    pub fn skipped_metrics(&self) -> &[MetricId] {
        &self.skipped_metrics
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Overrides the thread count used by [`SpireModel::estimate`]
    /// (0 = auto). Threading is purely a throughput knob — results are
    /// identical for every setting — so changing it after training is
    /// always safe.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Number of metrics in the ensemble.
    pub fn metric_count(&self) -> usize {
        self.rooflines.len()
    }
}

/// Merges one workload column through its roofline (paper Eq. 1), reading
/// the intensity and time columns as contiguous slices.
fn merge_column(
    column: &MetricColumn,
    roofline: &PiecewiseRoofline,
    merge: MergeStrategy,
) -> Result<MetricEstimate> {
    // Estimate the whole column through the batch SoA kernel (bit-identical
    // to per-sample `estimate`, minus the per-sample shape dispatch), then
    // accumulate in the same sample order as before.
    let estimates = roofline.estimate_column(column);
    merge_estimates(&estimates, column, merge)
}

/// The accumulation half of [`merge_column`]: merges pre-computed
/// per-sample estimates for one column. Shared with the coalesced
/// [`SpireModel::estimate_batch`] path, where the estimates arrive as a
/// slice of a larger concatenated column — sharing the accumulation loop
/// is what makes the two paths bit-identical by construction.
fn merge_estimates(
    estimates: &[f64],
    column: &MetricColumn,
    merge: MergeStrategy,
) -> Result<MetricEstimate> {
    let mut weighted_sum = 0.0;
    let mut weight_total = 0.0;
    let mut min_e = f64::INFINITY;
    let mut max_e = f64::NEG_INFINITY;
    let mut total_time = 0.0;
    // The strategy dispatch is hoisted out of the loop so each arm is a
    // tight accumulation kernel. Bit-identity constraints (pinned by the
    // pipeline-equivalence and golden suites): the sums stay *sequential
    // in sample order* — float addition does not reassociate, so a
    // chunked/pairwise reduction would change results — and the
    // unweighted arm's `weighted_sum += e` is exactly the former
    // `1.0 * e` (multiplication by 1.0 is exact for every f64, NaN
    // payloads included).
    match merge {
        MergeStrategy::TimeWeighted => {
            for (&e, &time) in estimates.iter().zip(column.times()) {
                weighted_sum += time * e;
                weight_total += time;
                min_e = min_e.min(e);
                max_e = max_e.max(e);
                total_time += time;
            }
        }
        MergeStrategy::Unweighted => {
            for (&e, &time) in estimates.iter().zip(column.times()) {
                weighted_sum += e;
                weight_total += 1.0;
                min_e = min_e.min(e);
                max_e = max_e.max(e);
                total_time += time;
            }
        }
    }
    // `weight_total` catches degenerate TimeWeighted merges; `total_time`
    // additionally catches all-zero (or NaN) measurement times under the
    // Unweighted strategy, where every sample still gets weight 1. Valid
    // samples always have `time > 0`, so this only fires for data that
    // bypassed validation — deserialized workloads and snapshot-loaded
    // paths included.
    if weight_total <= 0.0 || weight_total.is_nan() || total_time <= 0.0 || total_time.is_nan() {
        return Err(SpireError::DegenerateWeights {
            metric: column.metric().to_string(),
        });
    }
    Ok(MetricEstimate {
        merged: weighted_sum / weight_total,
        sample_count: column.len(),
        total_time,
        min_sample_estimate: min_e,
        max_sample_estimate: max_e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(metric: &str, t: f64, w: f64, m: f64) -> Sample {
        Sample::new(metric, t, w, m).unwrap()
    }

    fn training() -> SampleSet {
        let mut set = SampleSet::new();
        // "stalls": throughput rises with instructions-per-stall.
        set.push(s("stalls", 10.0, 10.0, 10.0)); // I 1, P 1
        set.push(s("stalls", 10.0, 20.0, 5.0)); // I 4, P 2
        set.push(s("stalls", 10.0, 30.0, 3.0)); // I 10, P 3
                                                // "hits": positively associated; throughput falls as hits thin out.
        set.push(s("hits", 10.0, 30.0, 30.0)); // I 1, P 3
        set.push(s("hits", 10.0, 20.0, 4.0)); // I 5, P 2
        set.push(s("hits", 10.0, 10.0, 1.0)); // I 10, P 1
        set
    }

    #[test]
    fn train_groups_by_metric() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert_eq!(model.metric_count(), 2);
        assert!(model.roofline(&MetricId::new("stalls")).is_some());
        assert!(model.roofline(&MetricId::new("hits")).is_some());
    }

    #[test]
    fn empty_training_set_errors() {
        let err = SpireModel::train(&SampleSet::new(), TrainConfig::default()).unwrap_err();
        assert!(matches!(err, SpireError::EmptyTrainingSet { metric: None }));
    }

    #[test]
    fn min_samples_filter_skips_sparse_metrics() {
        let mut set = training();
        set.push(s("rare", 10.0, 10.0, 1.0));
        let config = TrainConfig {
            min_samples_per_metric: 2,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&set, config).unwrap();
        assert_eq!(model.metric_count(), 2);
        assert_eq!(model.skipped_metrics(), [MetricId::new("rare")]);
    }

    #[test]
    fn estimate_is_min_of_per_metric_averages() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0)); // I 4 -> ~2
        wl.push(s("hits", 10.0, 20.0, 20.0)); // I 1 -> ~3
        let est = model.estimate(&wl).unwrap();
        let per: Vec<f64> = est.per_metric().values().map(|e| e.merged).collect();
        let min = per.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(est.throughput(), min);
    }

    #[test]
    fn time_weighted_average_matches_eq_1() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // Two stalls samples with different periods: one at I=1 (est 1) for
        // 30 time units, one at I=10 (est 3) for 10 time units.
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 30.0, 30.0, 30.0)); // I 1
        wl.push(s("stalls", 10.0, 100.0, 10.0)); // I 10
        let est = model.estimate(&wl).unwrap();
        let m = &est.per_metric()[&MetricId::new("stalls")];
        // (30*1 + 10*3) / 40 = 1.5
        assert!((m.merged - 1.5).abs() < 1e-9, "got {}", m.merged);
        assert_eq!(m.sample_count, 2);
        assert_eq!(m.total_time, 40.0);
    }

    #[test]
    fn unweighted_merge_ignores_period_lengths() {
        let config = TrainConfig {
            merge: MergeStrategy::Unweighted,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 30.0, 30.0, 30.0)); // I 1 -> 1
        wl.push(s("stalls", 10.0, 100.0, 10.0)); // I 10 -> 3
        let est = model.estimate(&wl).unwrap();
        let m = &est.per_metric()[&MetricId::new("stalls")];
        assert!((m.merged - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_aggregation_averages_metrics() {
        let config = TrainConfig {
            aggregation: EnsembleAggregation::Mean,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        wl.push(s("hits", 10.0, 20.0, 20.0));
        let est = model.estimate(&wl).unwrap();
        let per: Vec<f64> = est.per_metric().values().map(|e| e.merged).collect();
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!((est.throughput() - mean).abs() < 1e-12);
    }

    #[test]
    fn unknown_workload_metrics_are_ignored() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        wl.push(s("untrained", 10.0, 20.0, 5.0));
        let est = model.estimate(&wl).unwrap();
        assert_eq!(est.per_metric().len(), 1);
    }

    #[test]
    fn no_common_metrics_errors() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("untrained", 10.0, 20.0, 5.0));
        assert!(matches!(
            model.estimate(&wl).unwrap_err(),
            SpireError::NoCommonMetrics
        ));
    }

    #[test]
    fn estimate_batch_is_bit_identical_to_per_workload_estimate() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // A mixed batch: overlapping metrics (so columns coalesce), an
        // empty workload, and a no-common-metrics workload interleaved
        // with valid ones.
        let mut w1 = SampleSet::new();
        w1.push(s("stalls", 10.0, 20.0, 5.0));
        w1.push(s("hits", 10.0, 20.0, 20.0));
        let mut w2 = SampleSet::new();
        w2.push(s("stalls", 30.0, 30.0, 30.0));
        w2.push(s("stalls", 10.0, 100.0, 10.0));
        let empty = SampleSet::new();
        let mut foreign = SampleSet::new();
        foreign.push(s("untrained", 10.0, 20.0, 5.0));
        let mut w3 = SampleSet::new();
        w3.push(s("hits", 5.0, 40.0, 8.0));

        let batch = [&w1, &empty, &w2, &foreign, &w3];
        for threads in [1usize, 0] {
            let mut model = model.clone();
            model.set_threads(threads);
            let batched = model.estimate_batch(&batch);
            assert_eq!(batched.len(), batch.len());
            for (wl, got) in batch.iter().zip(&batched) {
                match model.estimate(wl) {
                    Ok(direct) => {
                        let got = got.as_ref().expect("batch slot should succeed");
                        assert_eq!(got.throughput().to_bits(), direct.throughput().to_bits());
                        assert_eq!(got.per_metric(), direct.per_metric());
                    }
                    Err(expected) => {
                        let got = got.as_ref().expect_err("batch slot should fail");
                        assert_eq!(got.to_string(), expected.to_string());
                    }
                }
            }
        }
    }

    #[test]
    fn estimate_batch_isolates_degenerate_workloads() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // A workload with all-zero times (bypassing Sample::new validation)
        // fails with DegenerateWeights without poisoning its batch
        // neighbors — even though its column was coalesced with theirs.
        let mut poisoned = SampleSet::new();
        poisoned.push_unchecked("stalls".into(), 0.0, 0.0, 1.0);
        let mut healthy = SampleSet::new();
        healthy.push(s("stalls", 10.0, 20.0, 5.0));
        let out = model.estimate_batch(&[&poisoned, &healthy]);
        assert!(matches!(
            out[0].as_ref().unwrap_err(),
            SpireError::DegenerateWeights { .. }
        ));
        let direct = model.estimate(&healthy).unwrap();
        let got = out[1].as_ref().unwrap();
        assert_eq!(got.throughput().to_bits(), direct.throughput().to_bits());
    }

    #[test]
    fn empty_workload_errors() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert!(matches!(
            model.estimate(&SampleSet::new()).unwrap_err(),
            SpireError::EmptyWorkload
        ));
    }

    #[test]
    fn ranking_is_ascending_and_deterministic() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 10.0, 10.0)); // I 1 -> 1
        wl.push(s("hits", 10.0, 30.0, 30.0)); // I 1 -> 3
        let est = model.estimate(&wl).unwrap();
        let ranked = est.ranked();
        assert_eq!(ranked[0].0.as_str(), "stalls");
        assert!(ranked[0].1.merged <= ranked[1].1.merged);
        assert_eq!(est.primary_bottleneck().unwrap().0.as_str(), "stalls");
    }

    #[test]
    fn zero_min_samples_config_is_rejected() {
        let config = TrainConfig {
            min_samples_per_metric: 0,
            ..TrainConfig::default()
        };
        assert!(SpireModel::train(&training(), config).is_err());
    }

    #[test]
    fn parallel_training_is_identical_to_serial() {
        // 12 metrics x 40 samples, varied shapes; any thread count must
        // produce the same ensemble and the same estimates, bit for bit.
        let mut set = SampleSet::new();
        for m in 0..12 {
            for i in 0..40 {
                let t = 10.0 + (i % 7) as f64;
                let w = 5.0 + ((i * m) % 13) as f64;
                let delta = (i % 5) as f64; // includes M = 0 rows
                set.push(s(&format!("metric_{m:02}"), t, w, delta));
            }
        }
        let serial_cfg = TrainConfig {
            threads: 1,
            ..TrainConfig::default()
        };
        let serial = SpireModel::train(&set, serial_cfg).unwrap();
        let wl: SampleSet = set.clone();
        let serial_est = serial.estimate(&wl).unwrap();
        for threads in [0, 2, 3, 8] {
            let cfg = TrainConfig {
                threads,
                ..TrainConfig::default()
            };
            let par = SpireModel::train(&set, cfg).unwrap();
            assert_eq!(serial.rooflines(), par.rooflines(), "threads = {threads}");
            let par_est = par.estimate(&wl).unwrap();
            assert_eq!(serial_est.per_metric(), par_est.per_metric());
            assert_eq!(serial_est.throughput(), par_est.throughput());
        }
    }

    #[test]
    fn zero_weight_workload_is_a_typed_error() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        // Zero times cannot be built through Sample::new; deserialization
        // bypasses that validation, which is exactly the hole the typed
        // error guards.
        let wl: SampleSet = serde_json::from_str(
            r#"{"samples":[{"metric":"stalls","time":0.0,"work":1.0,"metric_delta":1.0}]}"#,
        )
        .unwrap();
        match model.estimate(&wl).unwrap_err() {
            SpireError::DegenerateWeights { metric } => assert_eq!(metric, "stalls"),
            other => panic!("expected DegenerateWeights, got {other:?}"),
        }
    }

    #[test]
    fn top_metrics_matches_ranked_prefix_with_ties() {
        // Many metrics, several with identical merged estimates, so the
        // partial selection must reproduce the full sort's name
        // tie-breaking exactly.
        let mut set = SampleSet::new();
        for m in 0..20 {
            // Metrics come in tie groups of four: same samples -> same fit
            // -> same merged estimate.
            let group = m / 4;
            for i in 0..5 {
                let w = 10.0 + (group * 7 + i) as f64;
                set.push(s(&format!("tied_{m:02}"), 10.0, w, 2.0));
            }
        }
        let model = SpireModel::train(&set, TrainConfig::default()).unwrap();
        let est = model.estimate(&set).unwrap();
        let ranked = est.ranked();
        for k in [0, 1, 3, 4, 7, 19, 20, 25] {
            let top = est.top_metrics(k);
            assert_eq!(top.len(), k.min(ranked.len()));
            for (got, want) in top.iter().zip(&ranked) {
                assert_eq!(got.0, want.0, "k = {k}");
                assert_eq!(got.1, want.1.merged, "k = {k}");
            }
        }
    }

    #[test]
    fn train_config_without_threads_field_deserializes_to_auto() {
        // Configurations persisted before the `threads` knob existed (which
        // also predate `fit.thin_front`, and carry the old default front
        // cap of 256 from when thinning was unconditional).
        let json = serde_json::to_string(&TrainConfig::default()).unwrap();
        assert!(json.contains("\"threads\""));
        let legacy = r#"{"fit":{"right_fit":"Graph","auto_trend_threshold":-0.1,
            "max_front_size":256},"min_samples_per_metric":1,
            "merge":"TimeWeighted","aggregation":"Min"}"#;
        let cfg: TrainConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg.metric_error_budget, 0.5);
        // The stored fit options win over current defaults: the persisted
        // front cap is preserved and thinning stays off.
        assert_eq!(cfg.fit.max_front_size, 256);
        assert!(!cfg.fit.thin_front);
        assert_eq!(
            cfg,
            TrainConfig {
                fit: FitOptions {
                    max_front_size: 256,
                    ..FitOptions::default()
                },
                ..TrainConfig::default()
            }
        );
    }

    /// A fit function that panics on metrics whose name contains "poison".
    fn poisoned_fit(column: &MetricColumn, fit: &FitOptions) -> Result<PiecewiseRoofline> {
        if column.metric().as_str().contains("poison") {
            panic!("injected fit panic for {}", column.metric());
        }
        PiecewiseRoofline::fit_column(column, fit)
    }

    fn training_with_poison() -> SampleSet {
        let mut set = training();
        set.push(s("poisoned", 10.0, 10.0, 10.0));
        set.push(s("poisoned", 10.0, 20.0, 5.0));
        set
    }

    #[test]
    fn lenient_training_quarantines_panicking_metric() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let outcome = SpireModel::train_with_report_using(
            &training_with_poison(),
            TrainConfig::default(),
            TrainStrictness::Lenient,
            poisoned_fit,
        );
        std::panic::set_hook(hook);
        let outcome = outcome.unwrap();
        assert_eq!(outcome.model.metric_count(), 2);
        assert!(outcome.model.roofline(&MetricId::new("poisoned")).is_none());
        assert_eq!(outcome.report.metrics_seen, 3);
        assert_eq!(outcome.report.metrics_trained, 2);
        assert_eq!(outcome.report.quarantined.len(), 1);
        let q = &outcome.report.quarantined[0];
        assert_eq!(q.metric.as_str(), "poisoned");
        assert_eq!(q.reason, TrainQuarantineReason::FitPanicked);
        assert!(q.detail.contains("injected fit panic"));
        assert!(outcome.report.is_degraded());
        assert!(!outcome.report.budget_exceeded());
        assert!(outcome.report.summary().contains("fit_panicked 1"));
        // The degraded model still estimates over the survivors.
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        assert!(outcome.model.estimate(&wl).is_ok());
    }

    #[test]
    fn strict_training_fails_fast_on_panicking_metric() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = SpireModel::train_with_report_using(
            &training_with_poison(),
            TrainConfig::default(),
            TrainStrictness::Strict,
            poisoned_fit,
        )
        .unwrap_err();
        std::panic::set_hook(hook);
        match err {
            SpireError::FitPanicked { metric, message } => {
                assert_eq!(metric, "poisoned");
                assert!(message.contains("injected fit panic"));
            }
            other => panic!("expected FitPanicked, got {other:?}"),
        }
    }

    #[test]
    fn lenient_training_enforces_metric_error_budget() {
        // Two of three metrics poisoned with a budget of 0.5: 2/3 > 0.5.
        let mut set = training();
        set.push(s("poison_a", 10.0, 10.0, 10.0));
        set.push(s("poison_b", 10.0, 10.0, 10.0));
        // Drop "hits" so only stalls survives: seen 3 fitted, 2 quarantined.
        let mut thin = SampleSet::new();
        for smp in set.iter().filter(|smp| smp.metric().as_str() != "hits") {
            thin.push(smp);
        }
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = SpireModel::train_with_report_using(
            &thin,
            TrainConfig::default(),
            TrainStrictness::Lenient,
            poisoned_fit,
        )
        .unwrap_err();
        std::panic::set_hook(hook);
        match err {
            SpireError::ErrorBudgetExceeded {
                quarantined,
                total,
                budget,
            } => {
                assert_eq!((quarantined, total), (2, 3));
                assert!((budget - 0.5).abs() < 1e-12);
            }
            other => panic!("expected ErrorBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn train_with_report_matches_train_on_clean_data() {
        let outcome = SpireModel::train_with_report(
            &training(),
            TrainConfig::default(),
            TrainStrictness::Lenient,
        )
        .unwrap();
        let plain = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        assert_eq!(outcome.model, plain);
        assert!(!outcome.report.is_degraded());
        assert_eq!(outcome.report.metrics_trained, 2);
        assert_eq!(outcome.report.quarantined_fraction(), 0.0);
    }

    #[test]
    fn train_rejects_out_of_range_error_budget() {
        let config = TrainConfig {
            metric_error_budget: 1.5,
            ..TrainConfig::default()
        };
        assert!(matches!(
            SpireModel::train(&training(), config).unwrap_err(),
            SpireError::InvalidConfig {
                field: "metric_error_budget",
                ..
            }
        ));
    }

    #[test]
    fn train_report_serde_round_trip() {
        let report = TrainReport {
            metrics_seen: 5,
            metrics_trained: 3,
            metrics_skipped: 1,
            quarantined: vec![QuarantinedMetric {
                metric: MetricId::new("bad"),
                reason: TrainQuarantineReason::InvariantViolation,
                detail: "NaN plateau".to_owned(),
            }],
            error_budget: 0.5,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: TrainReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(back.to_table(5).contains("invariant_violation"));
    }

    #[test]
    fn unweighted_merge_with_zero_total_time_is_degenerate() {
        // The Unweighted strategy gives every sample weight 1, so the
        // original weight check alone cannot catch all-zero times; the
        // merge must still refuse them.
        let config = TrainConfig {
            merge: MergeStrategy::Unweighted,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&training(), config).unwrap();
        let wl: SampleSet = serde_json::from_str(
            r#"{"samples":[{"metric":"stalls","time":0.0,"work":1.0,"metric_delta":1.0}]}"#,
        )
        .unwrap();
        match model.estimate(&wl).unwrap_err() {
            SpireError::DegenerateWeights { metric } => assert_eq!(metric, "stalls"),
            other => panic!("expected DegenerateWeights, got {other:?}"),
        }
    }

    #[test]
    fn model_serde_round_trip_preserves_estimates() {
        let model = SpireModel::train(&training(), TrainConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: SpireModel = serde_json::from_str(&json).unwrap();
        let mut wl = SampleSet::new();
        wl.push(s("stalls", 10.0, 20.0, 5.0));
        let a = model.estimate(&wl).unwrap();
        let b = back.estimate(&wl).unwrap();
        assert_eq!(a.throughput(), b.throughput());
    }
}
