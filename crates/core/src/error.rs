//! Error types returned by the SPIRE model.

use std::fmt;

/// The error type returned by fallible operations in this crate.
///
/// All variants carry enough context to diagnose the failing input. The type
/// implements [`std::error::Error`] and is `Send + Sync + 'static`, so it can
/// be boxed into `Box<dyn Error + Send + Sync>` or wrapped by downstream
/// error types.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpireError {
    /// A sample field violated its domain constraint (e.g. `T <= 0`).
    InvalidSample {
        /// Name of the offending field (`"time"`, `"work"`, or `"metric_delta"`).
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Constraint that was violated, e.g. `"must be finite and > 0"`.
        constraint: &'static str,
    },
    /// A roofline was asked to train with no usable samples.
    EmptyTrainingSet {
        /// Metric whose sample group was empty, if the failure is per-metric.
        metric: Option<String>,
    },
    /// Training was requested for a metric with fewer samples than the
    /// configured minimum.
    TooFewSamples {
        /// Metric whose sample group was too small.
        metric: String,
        /// Number of samples that were available.
        have: usize,
        /// Configured minimum number of samples.
        need: usize,
    },
    /// An estimate was requested for a workload that shares no metrics with
    /// the trained model.
    NoCommonMetrics,
    /// The per-metric merge weights summed to zero (or NaN), so the merged
    /// estimate of Eq. (1) is undefined.
    ///
    /// Unreachable for sample sets built through [`Sample::new`]
    /// (`crate::Sample::new`), which requires strictly positive times, but
    /// deserialized data bypasses that validation and is surfaced here as
    /// an error rather than a `NaN` estimate.
    DegenerateWeights {
        /// Metric whose merge weights degenerate.
        metric: String,
    },
    /// An estimate was requested from an empty workload sample set.
    EmptyWorkload,
    /// The right-region fitting graph had no `Start -> End` path.
    ///
    /// This indicates an internal invariant violation; it should not occur
    /// for valid sample sets and is surfaced rather than panicking.
    NoFitPath {
        /// Metric whose right-region fit failed.
        metric: String,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// Name of the offending configuration field.
        field: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// A fault-tolerant ingest quarantined a larger fraction of its input
    /// rows than the configured error budget allows.
    ///
    /// The partial data is still available from the ingest layer; this
    /// error is raised only when a caller asks for budget enforcement
    /// (e.g. a strict import) rather than graceful degradation.
    ErrorBudgetExceeded {
        /// Number of rows that were quarantined.
        quarantined: usize,
        /// Total number of rows considered.
        total: usize,
        /// The configured budget as a fraction of `total` in `[0, 1]`.
        budget: f64,
    },
    /// A fitted or deserialized [`PiecewiseRoofline`](crate::PiecewiseRoofline)
    /// violates one of its structural invariants (ordered finite knots,
    /// increasing concave-down left region, decreasing concave-up right
    /// region, non-negative ceilings).
    ///
    /// Raised by [`PiecewiseRoofline::validate`](crate::PiecewiseRoofline::validate)
    /// after fits over hostile data and after loading model snapshots; a
    /// model that fails validation must not be used for estimates.
    ModelInvariantViolation {
        /// Metric whose roofline is malformed.
        metric: String,
        /// Which invariant was violated, in human-readable form.
        invariant: String,
    },
    /// A metric's roofline fit panicked inside the training fan-out.
    ///
    /// The panic is caught at the per-metric boundary (the scoped thread
    /// pool survives); in lenient training the metric is quarantined into
    /// the [`TrainReport`](crate::TrainReport) instead, and this error is
    /// surfaced only in strict mode.
    FitPanicked {
        /// Metric whose fit panicked.
        metric: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A model snapshot could not be understood at the container level:
    /// malformed JSON, a missing field, an unsupported format version, or
    /// an unknown checksum algorithm.
    ///
    /// Container-level damage is fatal in both strict and lenient loads —
    /// per-metric salvage only applies once the outer envelope parses.
    SnapshotFormat {
        /// What was wrong with the snapshot container.
        reason: String,
    },
    /// A per-metric snapshot record failed its integrity check: the stored
    /// checksum does not match the record payload, the payload no longer
    /// parses, or the embedded roofline fails validation.
    ///
    /// Lenient loads drop only the damaged record and salvage the rest;
    /// strict loads refuse the whole snapshot with this error.
    SnapshotRecordCorrupt {
        /// Metric whose snapshot record is damaged.
        metric: String,
        /// Why the record was rejected.
        reason: String,
    },
    /// A model and a dataset carry provenance from different machines:
    /// their [`MachineSpec`](crate::MachineSpec) fingerprints (or
    /// normalization units) disagree.
    ///
    /// Raised by strict estimate/analyze/update runs and by
    /// [`SnapshotDelta::apply`](crate::SnapshotDelta::apply) across
    /// differing machines; lenient runs degrade with a typed
    /// `machine_mismatch` event instead. Artifacts without machine
    /// provenance are never refused — absence is legacy, not a mismatch.
    MachineMismatch {
        /// `name [fingerprint]` of the machine the model was trained on.
        expected: String,
        /// `name [fingerprint]` of the machine the data came from.
        found: String,
        /// Which operation tripped the check (e.g. `"analyze"`).
        context: String,
    },
    /// A binary column-file ([`crate::colfile`]) data chunk failed its
    /// integrity check: the stored FNV-1a checksum does not match the chunk
    /// payload, or the chunk points outside the file.
    ///
    /// Lenient loads quarantine only the damaged chunk's rows and salvage
    /// the rest; strict loads refuse the whole file with this error — the
    /// same taxonomy as [`SpireError::SnapshotRecordCorrupt`].
    ColumnChunkCorrupt {
        /// Dataset section (workload label) the chunk belongs to.
        label: String,
        /// Metric whose column the chunk stores.
        metric: String,
        /// Index of the damaged chunk within its column.
        chunk: usize,
        /// Why the chunk was rejected.
        reason: String,
    },
}

impl fmt::Display for SpireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpireError::InvalidSample {
                field,
                value,
                constraint,
            } => write!(f, "invalid sample: {field} = {value} ({constraint})"),
            SpireError::EmptyTrainingSet { metric: Some(m) } => {
                write!(f, "no training samples for metric `{m}`")
            }
            SpireError::EmptyTrainingSet { metric: None } => {
                write!(f, "training set contains no samples")
            }
            SpireError::TooFewSamples { metric, have, need } => write!(
                f,
                "metric `{metric}` has {have} samples but at least {need} are required"
            ),
            SpireError::NoCommonMetrics => {
                write!(
                    f,
                    "workload samples share no metrics with the trained model"
                )
            }
            SpireError::EmptyWorkload => write!(f, "workload sample set is empty"),
            SpireError::DegenerateWeights { metric } => write!(
                f,
                "merge weights for metric `{metric}` sum to zero or NaN; no sample \
                 contributed positive weight"
            ),
            SpireError::NoFitPath { metric } => write!(
                f,
                "right-region fit for metric `{metric}` found no start-to-end path"
            ),
            SpireError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            SpireError::ErrorBudgetExceeded {
                quarantined,
                total,
                budget,
            } => write!(
                f,
                "ingest quarantined {quarantined} of {total} rows, exceeding the \
                 error budget of {:.1}%",
                budget * 100.0
            ),
            SpireError::ModelInvariantViolation { metric, invariant } => write!(
                f,
                "roofline for metric `{metric}` violates model invariant: {invariant}"
            ),
            SpireError::FitPanicked { metric, message } => {
                write!(f, "roofline fit for metric `{metric}` panicked: {message}")
            }
            SpireError::SnapshotFormat { reason } => {
                write!(f, "model snapshot is unreadable: {reason}")
            }
            SpireError::SnapshotRecordCorrupt { metric, reason } => write!(
                f,
                "snapshot record for metric `{metric}` is corrupt: {reason}"
            ),
            SpireError::MachineMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "machine mismatch in {context}: model is from {expected} but the \
                 data is from {found}"
            ),
            SpireError::ColumnChunkCorrupt {
                label,
                metric,
                chunk,
                reason,
            } => write!(
                f,
                "column chunk {chunk} of metric `{metric}` in section `{label}` is \
                 corrupt: {reason}"
            ),
        }
    }
}

impl std::error::Error for SpireError {}

/// Convenient alias for `Result<T, SpireError>`.
pub type Result<T> = std::result::Result<T, SpireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SpireError::InvalidSample {
            field: "time",
            value: -1.0,
            constraint: "must be finite and > 0",
        };
        let msg = e.to_string();
        assert!(msg.contains("time"));
        assert!(msg.contains("-1"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SpireError>();
    }

    #[test]
    fn too_few_samples_reports_counts() {
        let e = SpireError::TooFewSamples {
            metric: "stalls".to_owned(),
            have: 1,
            need: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('1') && msg.contains('3') && msg.contains("stalls"));
    }

    #[test]
    fn error_budget_exceeded_reports_counts_and_budget() {
        let e = SpireError::ErrorBudgetExceeded {
            quarantined: 7,
            total: 10,
            budget: 0.25,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains("10") && msg.contains("25.0%"));
    }

    #[test]
    fn robustness_variants_render_their_context() {
        let e = SpireError::ModelInvariantViolation {
            metric: "stalls".to_owned(),
            invariant: "left knots must be strictly increasing in x".to_owned(),
        };
        assert!(e.to_string().contains("stalls") && e.to_string().contains("increasing"));

        let e = SpireError::FitPanicked {
            metric: "stalls".to_owned(),
            message: "index out of bounds".to_owned(),
        };
        assert!(e.to_string().contains("panicked") && e.to_string().contains("stalls"));

        let e = SpireError::SnapshotFormat {
            reason: "unsupported format version 99".to_owned(),
        };
        assert!(e.to_string().contains("version 99"));

        let e = SpireError::SnapshotRecordCorrupt {
            metric: "stalls".to_owned(),
            reason: "checksum mismatch".to_owned(),
        };
        assert!(e.to_string().contains("checksum") && e.to_string().contains("stalls"));
    }

    #[test]
    fn machine_mismatch_renders_both_tags_and_context() {
        let e = SpireError::MachineMismatch {
            expected: "skylake-server [aaaa]".to_owned(),
            found: "little [bbbb]".to_owned(),
            context: "analyze".to_owned(),
        };
        let msg = e.to_string();
        assert!(msg.contains("skylake-server [aaaa]"));
        assert!(msg.contains("little [bbbb]"));
        assert!(msg.contains("analyze"));
    }

    #[test]
    fn empty_training_set_variants_render() {
        assert!(SpireError::EmptyTrainingSet { metric: None }
            .to_string()
            .contains("no samples"));
        assert!(SpireError::EmptyTrainingSet {
            metric: Some("x".into())
        }
        .to_string()
        .contains("`x`"));
    }
}
