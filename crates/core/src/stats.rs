//! Small statistics utilities used by the analysis layer: rank
//! correlations and ranking-overlap measures for comparing bottleneck
//! rankings (SPIRE vs TMA vs regression baselines).

/// Kendall's tau-b rank correlation between two equal-length slices.
///
/// Returns a value in `[-1, 1]`; `0.0` for degenerate inputs (fewer than
/// two elements, or all-tied sequences). Tau-b adjusts for ties on
/// either side.
///
/// ```
/// use spire_core::stats::kendall_tau;
///
/// let perfect = kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
/// assert!((perfect - 1.0).abs() < 1e-12);
/// let reversed = kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
/// assert!((reversed + 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired samples");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // tied on both: contributes to neither
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Spearman's rank correlation (Pearson over ranks, average-rank ties).
///
/// Returns `0.0` for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired samples");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation coefficient; `0.0` for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs paired samples");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if saa <= 0.0 || sbb <= 0.0 {
        return 0.0;
    }
    sab / (saa * sbb).sqrt()
}

/// Average ranks (1-based) with ties receiving the mean of their span.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Overlap@k between two ranked lists: the fraction of the first `k`
/// elements of `a` that also appear in the first `k` of `b`.
///
/// Returns `1.0` when `k == 0` (empty prefixes trivially agree). Items
/// are compared by equality.
pub fn overlap_at_k<T: PartialEq>(a: &[T], b: &[T], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let ka = &a[..k.min(a.len())];
    let kb = &b[..k.min(b.len())];
    if ka.is_empty() {
        return 1.0;
    }
    let hits = ka.iter().filter(|x| kb.contains(x)).count();
    hits as f64 / ka.len() as f64
}

/// Mean and sample standard deviation of a slice; `(0, 0)` when empty.
pub fn mean_std(v: &[f64]) -> (f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if v.len() < 2 {
        return (mean, 0.0);
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kendall_extremes() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_handles_ties() {
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(t > 0.0 && t < 1.0);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn kendall_degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn kendall_length_mismatch_panics() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn spearman_matches_monotone_transforms() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone in a
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_average_ranks_for_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn pearson_basic() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn overlap_at_k_counts_shared_prefix_items() {
        let a = ["x", "y", "z", "w"];
        let b = ["y", "x", "q", "r"];
        assert!((overlap_at_k(&a, &b, 2) - 1.0).abs() < 1e-12);
        assert!((overlap_at_k(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_at_k(&a, &b, 0), 1.0);
        let empty: [&str; 0] = [];
        assert_eq!(overlap_at_k(&empty, &b, 3), 1.0);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }
}
