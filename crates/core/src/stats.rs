//! Small statistics utilities used by the analysis layer: rank
//! correlations and ranking-overlap measures for comparing bottleneck
//! rankings (SPIRE vs TMA vs regression baselines).

/// Keeps the indices where both slices are non-NaN.
///
/// The shared NaN policy of this module (matching the estimator's
/// NaN-propagation policy in `RightRegion::eval`): a NaN carries no rank
/// information, so the pair of observations at that index is excluded from
/// the correlation as if it had never been measured. Infinities *are*
/// ordered and are kept.
fn non_nan_indices(a: &[f64], b: &[f64]) -> Vec<usize> {
    (0..a.len())
        .filter(|&i| !a[i].is_nan() && !b[i].is_nan())
        .collect()
}

/// Sign of `x - y` extracted via [`f64::total_cmp`] — never panics, and
/// treats numerically equal values (including `-0.0` vs `0.0`) as tied.
/// Callers filter NaN before comparing; `total_cmp` keeps the extraction
/// total even if one slips through.
fn cmp_sign(x: f64, y: f64) -> i64 {
    if x == y {
        return 0;
    }
    match x.total_cmp(&y) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// Kendall's tau-b rank correlation between two equal-length slices.
///
/// Returns a value in `[-1, 1]`; `0.0` for degenerate inputs (fewer than
/// two usable elements, or all-tied sequences). Tau-b adjusts for ties on
/// either side.
///
/// NaN semantics: indices where either slice holds NaN are skipped — every
/// pair involving such an index contributes to neither the numerator nor
/// the tie counts, exactly as if the observation had never been measured.
/// This function is total over all finite, infinite, and NaN inputs; it
/// never panics on values.
///
/// ```
/// use spire_core::stats::kendall_tau;
///
/// let perfect = kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
/// assert!((perfect - 1.0).abs() < 1e-12);
/// let reversed = kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
/// assert!((reversed + 1.0).abs() < 1e-12);
/// // A NaN observation is skipped, not propagated.
/// let skipped = kendall_tau(&[1.0, f64::NAN, 2.0, 3.0], &[10.0, 0.0, 20.0, 30.0]);
/// assert!((skipped - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired samples");
    let idx = non_nan_indices(a, b);
    let n = idx.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for p in 0..n {
        for q in (p + 1)..n {
            let (i, j) = (idx[p], idx[q]);
            let sa = cmp_sign(a[i], a[j]);
            let sb = cmp_sign(b[i], b[j]);
            // Tau-b's n1/n2 terms count every pair tied on that variable,
            // including pairs tied on both — dropping joint ties from both
            // counts shrinks the denominator and inflates |τ|.
            if sa == 0 {
                ties_a += 1;
            }
            if sb == 0 {
                ties_b += 1;
            }
            if sa != 0 && sb != 0 {
                if sa == sb {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Spearman's rank correlation (Pearson over ranks, average-rank ties).
///
/// Returns `0.0` for degenerate inputs. NaN observations are skipped
/// pairwise under the same policy as [`kendall_tau`]: an index where
/// either slice holds NaN is excluded before ranking.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired samples");
    let idx = non_nan_indices(a, b);
    if idx.len() < 2 {
        return 0.0;
    }
    let fa: Vec<f64> = idx.iter().map(|&i| a[i]).collect();
    let fb: Vec<f64> = idx.iter().map(|&i| b[i]).collect();
    let ra = ranks(&fa);
    let rb = ranks(&fb);
    pearson(&ra, &rb)
}

/// Pearson correlation coefficient; `0.0` for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs paired samples");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if saa <= 0.0 || sbb <= 0.0 {
        return 0.0;
    }
    sab / (saa * sbb).sqrt()
}

/// Average ranks (1-based) with ties receiving the mean of their span.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Overlap@k between two ranked lists: the number of distinct items shared
/// by the two `k`-prefixes, as a fraction of the first `k` rank positions.
///
/// This is a **total function** over every `(a, b, k)` — the serve `stats`
/// endpoint reports it for arbitrary rankings, so the edge cases are
/// pinned:
///
/// * `k == 0` returns `1.0` (empty prefixes trivially agree), as does
///   `k > 0` with both lists empty;
/// * `k > max(a.len(), b.len())` is clamped to the longer list, so
///   comparing two identical short lists yields `1.0` no matter how large
///   `k` is;
/// * when one list is shorter than the (clamped) `k`, its missing
///   positions count as disagreements;
/// * the result is always in `[0, 1]` and symmetric in `a`/`b`.
///
/// Duplicate items within a prefix are counted once. Items are compared
/// by equality.
///
/// This definition is symmetric: `overlap_at_k(a, b, k) ==
/// overlap_at_k(b, a, k)` for any inputs, in particular for equal-length
/// rankings of the same metric universe.
pub fn overlap_at_k<T: PartialEq>(a: &[T], b: &[T], k: usize) -> f64 {
    let eff = k.min(a.len().max(b.len()));
    if eff == 0 {
        return 1.0;
    }
    let ka = &a[..k.min(a.len())];
    let kb = &b[..k.min(b.len())];
    let mut hits = 0usize;
    for (i, x) in ka.iter().enumerate() {
        // Count each distinct shared item once, regardless of duplicates.
        if !ka[..i].contains(x) && kb.contains(x) {
            hits += 1;
        }
    }
    hits as f64 / eff as f64
}

/// Mean and sample standard deviation of a slice; `(0, 0)` when empty.
pub fn mean_std(v: &[f64]) -> (f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if v.len() < 2 {
        return (mean, 0.0);
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kendall_extremes() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_handles_ties() {
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(t > 0.0 && t < 1.0);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn kendall_degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn kendall_length_mismatch_panics() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    /// Textbook tau-b computed from tie-group sizes: `n1`/`n2` are the
    /// numbers of pairs tied within `a` / within `b` (joint ties included
    /// in both), and the numerator sums `sign(da) * sign(db)`. NaN indices
    /// are pre-filtered under the same skip policy as [`kendall_tau`];
    /// sign extraction goes through `total_cmp`, so the reference is as
    /// panic-free as the implementation it checks.
    fn tau_b_reference(a: &[f64], b: &[f64]) -> f64 {
        let idx = non_nan_indices(a, b);
        let (a, b): (Vec<f64>, Vec<f64>) = (
            idx.iter().map(|&i| a[i]).collect(),
            idx.iter().map(|&i| b[i]).collect(),
        );
        let n = a.len();
        if n < 2 {
            return 0.0;
        }
        let mut num = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let sa = cmp_sign(a[i], a[j]);
                let sb = cmp_sign(b[i], b[j]);
                num += sa * sb;
            }
        }
        let tie_pairs = |v: &[f64]| -> i64 {
            let mut sorted = v.to_vec();
            sorted.sort_by(f64::total_cmp);
            let mut pairs = 0i64;
            let mut i = 0;
            while i < sorted.len() {
                let mut t = 1i64;
                while i + 1 < sorted.len() && sorted[i + 1] == sorted[i] {
                    t += 1;
                    i += 1;
                }
                pairs += t * (t - 1) / 2;
                i += 1;
            }
            pairs
        };
        let n0 = (n * (n - 1) / 2) as i64;
        let denom = (((n0 - tie_pairs(&a)) as f64) * ((n0 - tie_pairs(&b)) as f64)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            num as f64 / denom
        }
    }

    #[test]
    fn kendall_matches_brute_force_tau_b_on_tie_heavy_inputs() {
        // Deterministic pseudo-random vectors drawn from a small integer
        // alphabet, so ties — including pairs tied on both variables —
        // are frequent.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n = 2 + (next() % 12) as usize;
            let alphabet = 1 + (next() % 4);
            let a: Vec<f64> = (0..n).map(|_| (next() % alphabet) as f64).collect();
            let b: Vec<f64> = (0..n).map(|_| (next() % alphabet) as f64).collect();
            let got = kendall_tau(&a, &b);
            let want = tau_b_reference(&a, &b);
            assert!(
                (got - want).abs() < 1e-12,
                "trial {trial}: kendall_tau = {got}, reference = {want}\n a = {a:?}\n b = {b:?}"
            );
        }
    }

    #[test]
    fn kendall_counts_joint_ties_in_both_denominator_terms() {
        // One pair tied on both variables; the other pairs are concordant.
        // Reference tau-b: C=2, D=0, n0=3, n1=n2=1 -> 2/sqrt(2*2) = 1.
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[5.0, 5.0, 9.0]);
        assert!((t - 1.0).abs() < 1e-12, "tau = {t}");
    }

    #[test]
    fn spearman_matches_monotone_transforms() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone in a
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_average_ranks_for_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn pearson_basic() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn overlap_at_k_counts_shared_prefix_items() {
        let a = ["x", "y", "z", "w"];
        let b = ["y", "x", "q", "r"];
        assert!((overlap_at_k(&a, &b, 2) - 1.0).abs() < 1e-12);
        assert!((overlap_at_k(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_at_k(&a, &b, 0), 1.0);
        // A missing list cannot agree with a populated prefix.
        let empty: [&str; 0] = [];
        assert_eq!(overlap_at_k(&empty, &b, 3), 0.0);
        assert_eq!(overlap_at_k(&empty, &empty, 3), 1.0);
    }

    #[test]
    fn overlap_at_k_is_symmetric_for_short_lists() {
        // Regression: the old implementation divided by `ka.len()`, so a
        // short `a` against a long `b` disagreed with the swapped call.
        let a = ["x", "y"];
        let b = ["y", "q", "x", "r"];
        for k in 0..=5 {
            assert_eq!(
                overlap_at_k(&a, &b, k),
                overlap_at_k(&b, &a, k),
                "asymmetric at k={k}"
            );
        }
        // k clamps to the longer list: identical short lists still agree
        // perfectly even when k exceeds both lengths.
        assert_eq!(overlap_at_k(&a, &a, 5), 1.0);
        // k=3 prefixes: {x,y} vs {y,q,x} share 2 distinct items over 3
        // positions.
        assert!((overlap_at_k(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        // Duplicates within a prefix are counted once.
        let dup = ["x", "x", "y"];
        let other = ["x", "y", "z"];
        assert!((overlap_at_k(&dup, &other, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_at_k(&dup, &other, 3), overlap_at_k(&other, &dup, 3));
    }

    #[test]
    fn kendall_skips_nan_observations_instead_of_panicking() {
        // Regression: the pre-fix implementation extracted pair signs with
        // `partial_cmp(&0.0).unwrap()`, which panicked on NaN input. The
        // defined semantics now skip the NaN index entirely.
        let with_nan = kendall_tau(&[1.0, f64::NAN, 2.0, 3.0], &[1.0, 9.0, 2.0, 3.0]);
        let without = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(with_nan.to_bits(), without.to_bits());
        // NaN on either side skips the index.
        let t = kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, f64::NAN, 1.0]);
        assert!((t + 1.0).abs() < 1e-12, "tau = {t}");
        // All-NaN input is degenerate, not a panic.
        assert_eq!(kendall_tau(&[f64::NAN; 4], &[1.0, 2.0, 3.0, 4.0]), 0.0);
        assert_eq!(kendall_tau(&[f64::NAN; 2], &[f64::NAN; 2]), 0.0);
    }

    #[test]
    fn kendall_orders_infinities() {
        // Infinities carry rank information and are kept; equal infinities
        // are ties (the old `a[i] - a[j]` formulation made them NaN).
        let t = kendall_tau(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], &[1.0, 2.0, 3.0]);
        assert!((t - 1.0).abs() < 1e-12);
        assert_eq!(
            kendall_tau(&[f64::INFINITY, f64::INFINITY], &[1.0, 2.0]),
            0.0
        );
    }

    #[test]
    fn spearman_skips_nan_observations() {
        let with_nan = spearman_rho(&[1.0, f64::NAN, 2.0, 3.0], &[1.0, 9.0, 2.0, 3.0]);
        let without = spearman_rho(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(with_nan.to_bits(), without.to_bits());
        assert_eq!(spearman_rho(&[f64::NAN; 3], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn overlap_at_k_edge_cases_are_pinned() {
        let a = ["x", "y", "z"];
        let b = ["z", "y", "x"];
        // k == 0 is defined as perfect agreement.
        assert_eq!(overlap_at_k(&a, &b, 0), 1.0);
        assert_eq!(overlap_at_k(&a[..0], &b[..0], 0), 1.0);
        // k beyond both lengths clamps to the longer list.
        assert_eq!(overlap_at_k(&a, &b, usize::MAX), 1.0);
        assert_eq!(overlap_at_k(&a, &a, 1000), 1.0);
        // One empty list: the populated prefix finds no partners.
        assert_eq!(overlap_at_k(&a[..0], &b, 2), 0.0);
        assert_eq!(overlap_at_k(&a, &b[..0], 2), 0.0);
        // Both empty with k > 0: clamped to 0 positions, trivially 1.0.
        assert_eq!(overlap_at_k(&a[..0], &b[..0], 5), 1.0);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }
}
