//! Small statistics utilities used by the analysis layer: rank
//! correlations and ranking-overlap measures for comparing bottleneck
//! rankings (SPIRE vs TMA vs regression baselines).

/// Kendall's tau-b rank correlation between two equal-length slices.
///
/// Returns a value in `[-1, 1]`; `0.0` for degenerate inputs (fewer than
/// two elements, or all-tied sequences). Tau-b adjusts for ties on
/// either side.
///
/// ```
/// use spire_core::stats::kendall_tau;
///
/// let perfect = kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
/// assert!((perfect - 1.0).abs() < 1e-12);
/// let reversed = kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
/// assert!((reversed + 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired samples");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            // Tau-b's n1/n2 terms count every pair tied on that variable,
            // including pairs tied on both — dropping joint ties from both
            // counts shrinks the denominator and inflates |τ|.
            if da == 0.0 {
                ties_a += 1;
            }
            if db == 0.0 {
                ties_b += 1;
            }
            if da != 0.0 && db != 0.0 {
                if (da > 0.0) == (db > 0.0) {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Spearman's rank correlation (Pearson over ranks, average-rank ties).
///
/// Returns `0.0` for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs paired samples");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation coefficient; `0.0` for degenerate inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs paired samples");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if saa <= 0.0 || sbb <= 0.0 {
        return 0.0;
    }
    sab / (saa * sbb).sqrt()
}

/// Average ranks (1-based) with ties receiving the mean of their span.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Overlap@k between two ranked lists: the number of distinct items shared
/// by the two `k`-prefixes, as a fraction of the first `k` rank positions.
///
/// `k` is clamped to the longer list, so comparing two identical short
/// lists yields `1.0`; when one list is shorter than the (clamped) `k`,
/// its missing positions count as disagreements. Duplicate items within a
/// prefix are counted once. Returns `1.0` when `k == 0` or both lists are
/// empty (empty prefixes trivially agree). Items are compared by equality.
///
/// This definition is symmetric: `overlap_at_k(a, b, k) ==
/// overlap_at_k(b, a, k)` for any inputs, in particular for equal-length
/// rankings of the same metric universe.
pub fn overlap_at_k<T: PartialEq>(a: &[T], b: &[T], k: usize) -> f64 {
    let eff = k.min(a.len().max(b.len()));
    if eff == 0 {
        return 1.0;
    }
    let ka = &a[..k.min(a.len())];
    let kb = &b[..k.min(b.len())];
    let mut hits = 0usize;
    for (i, x) in ka.iter().enumerate() {
        // Count each distinct shared item once, regardless of duplicates.
        if !ka[..i].contains(x) && kb.contains(x) {
            hits += 1;
        }
    }
    hits as f64 / eff as f64
}

/// Mean and sample standard deviation of a slice; `(0, 0)` when empty.
pub fn mean_std(v: &[f64]) -> (f64, f64) {
    if v.is_empty() {
        return (0.0, 0.0);
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if v.len() < 2 {
        return (mean, 0.0);
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kendall_extremes() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_handles_ties() {
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(t > 0.0 && t < 1.0);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn kendall_degenerate_inputs() {
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn kendall_length_mismatch_panics() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    /// Textbook tau-b computed from tie-group sizes: `n1`/`n2` are the
    /// numbers of pairs tied within `a` / within `b` (joint ties included
    /// in both), and the numerator sums `sign(da) * sign(db)`.
    fn tau_b_reference(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        if n < 2 {
            return 0.0;
        }
        let mut num = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let sa = (a[i] - a[j]).partial_cmp(&0.0).unwrap() as i64;
                let sb = (b[i] - b[j]).partial_cmp(&0.0).unwrap() as i64;
                num += sa * sb;
            }
        }
        let tie_pairs = |v: &[f64]| -> i64 {
            let mut sorted = v.to_vec();
            sorted.sort_by(f64::total_cmp);
            let mut pairs = 0i64;
            let mut i = 0;
            while i < sorted.len() {
                let mut t = 1i64;
                while i + 1 < sorted.len() && sorted[i + 1] == sorted[i] {
                    t += 1;
                    i += 1;
                }
                pairs += t * (t - 1) / 2;
                i += 1;
            }
            pairs
        };
        let n0 = (n * (n - 1) / 2) as i64;
        let denom = (((n0 - tie_pairs(a)) as f64) * ((n0 - tie_pairs(b)) as f64)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            num as f64 / denom
        }
    }

    #[test]
    fn kendall_matches_brute_force_tau_b_on_tie_heavy_inputs() {
        // Deterministic pseudo-random vectors drawn from a small integer
        // alphabet, so ties — including pairs tied on both variables —
        // are frequent.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n = 2 + (next() % 12) as usize;
            let alphabet = 1 + (next() % 4);
            let a: Vec<f64> = (0..n).map(|_| (next() % alphabet) as f64).collect();
            let b: Vec<f64> = (0..n).map(|_| (next() % alphabet) as f64).collect();
            let got = kendall_tau(&a, &b);
            let want = tau_b_reference(&a, &b);
            assert!(
                (got - want).abs() < 1e-12,
                "trial {trial}: kendall_tau = {got}, reference = {want}\n a = {a:?}\n b = {b:?}"
            );
        }
    }

    #[test]
    fn kendall_counts_joint_ties_in_both_denominator_terms() {
        // One pair tied on both variables; the other pairs are concordant.
        // Reference tau-b: C=2, D=0, n0=3, n1=n2=1 -> 2/sqrt(2*2) = 1.
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[5.0, 5.0, 9.0]);
        assert!((t - 1.0).abs() < 1e-12, "tau = {t}");
    }

    #[test]
    fn spearman_matches_monotone_transforms() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone in a
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_average_ranks_for_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn pearson_basic() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn overlap_at_k_counts_shared_prefix_items() {
        let a = ["x", "y", "z", "w"];
        let b = ["y", "x", "q", "r"];
        assert!((overlap_at_k(&a, &b, 2) - 1.0).abs() < 1e-12);
        assert!((overlap_at_k(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_at_k(&a, &b, 0), 1.0);
        // A missing list cannot agree with a populated prefix.
        let empty: [&str; 0] = [];
        assert_eq!(overlap_at_k(&empty, &b, 3), 0.0);
        assert_eq!(overlap_at_k(&empty, &empty, 3), 1.0);
    }

    #[test]
    fn overlap_at_k_is_symmetric_for_short_lists() {
        // Regression: the old implementation divided by `ka.len()`, so a
        // short `a` against a long `b` disagreed with the swapped call.
        let a = ["x", "y"];
        let b = ["y", "q", "x", "r"];
        for k in 0..=5 {
            assert_eq!(
                overlap_at_k(&a, &b, k),
                overlap_at_k(&b, &a, k),
                "asymmetric at k={k}"
            );
        }
        // k clamps to the longer list: identical short lists still agree
        // perfectly even when k exceeds both lengths.
        assert_eq!(overlap_at_k(&a, &a, 5), 1.0);
        // k=3 prefixes: {x,y} vs {y,q,x} share 2 distinct items over 3
        // positions.
        assert!((overlap_at_k(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        // Duplicates within a prefix are counted once.
        let dup = ["x", "x", "y"];
        let other = ["x", "y", "z"];
        assert!((overlap_at_k(&dup, &other, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_at_k(&dup, &other, 3), overlap_at_k(&other, &dup, 3));
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }
}
