//! Deterministic fork/join helpers for the train/estimate pipeline.
//!
//! SPIRE's per-metric work (roofline fits, estimate merges) is
//! embarrassingly parallel: the paper's setup trains 424 independent
//! rooflines. [`map`] fans a slice of such jobs across scoped worker
//! threads and returns results **in input order**, so a parallel run is
//! bit-identical to a serial one — thread scheduling can reorder
//! execution but never the output, and each job's floating-point
//! reductions stay within one thread.
//!
//! Thread counts follow the convention used by
//! [`TrainConfig::threads`](crate::ensemble::TrainConfig::threads):
//! `0` means "use [`available_parallelism`]", `1` forces the serial
//! path (no threads are spawned), and any other value caps the worker
//! count. The cap is additionally clamped to the number of jobs.

use crossbeam::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of hardware threads available to this process, with a fallback
/// of 1 when the runtime cannot determine it.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` (auto) becomes
/// [`available_parallelism`], anything else is returned unchanged.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

/// Applies `f` to every item and collects the results in input order,
/// fanning the items across at most `threads` scoped worker threads.
///
/// `threads` follows the module convention (`0` = auto, `1` = serial).
/// Items are partitioned into contiguous chunks, one per worker, so
/// results land in pre-assigned output slots and the returned vector is
/// independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel::map worker panicked");

    out.into_iter()
        .map(|slot| slot.expect("every output slot is filled by its worker"))
        .collect()
}

/// Like [`map`], but contains panics at the per-item boundary: a job that
/// panics yields `Err(message)` in its output slot while every other job —
/// including the rest of the panicking worker's chunk — still runs and the
/// scoped thread pool joins normally.
///
/// This is the containment layer under fault-isolated training: one
/// poisoned metric's fit must not tear down the fan-out for the other
/// metrics. The panic payload is recovered when it is a `&str` or
/// `String` (the overwhelmingly common case for `panic!`/`assert!`/
/// indexing panics); other payloads are reported as an opaque message.
///
/// Determinism matches [`map`]: output order is input order, and each
/// item's result is independent of the thread count.
///
/// Note: a panicking job still routes through the global panic hook, so
/// callers running many injected panics may want to silence the default
/// stderr backtrace in their harness.
pub fn map_catching<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map(items, threads, |item| {
        // `AssertUnwindSafe` is sound here: `f` is `Fn` (no interior state
        // to observe half-mutated) and a panicking job writes nothing to
        // its output slot besides this Result.
        catch_unwind(AssertUnwindSafe(|| f(item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// Runs one closure with panic containment: `Ok(value)` on success,
/// `Err(message)` if the closure panics.
///
/// This is the single-job form of [`map_catching`], intended for request
/// isolation in resident services: one malformed or adversarial request
/// must not tear down the worker thread serving every other connection.
/// Payload recovery matches [`map_catching`] (`&str` / `String`
/// payloads become the message, anything else is opaque), and the same
/// panic-hook note applies.
pub fn run_catching<U>(f: impl FnOnce() -> U) -> Result<U, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| panic_message(payload.as_ref()))
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_to_available_parallelism() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = map(&items, threads, |&x| x * 2);
            let expect: Vec<usize> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, 4, |&x| x).is_empty());
        assert_eq!(map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_equals_serial_for_float_reductions() {
        // Each job reduces its own slice; per-job summation order is
        // fixed, so the result is bit-identical at any thread count.
        let jobs: Vec<Vec<f64>> = (0..17)
            .map(|i| (0..1000).map(|j| (i * 1000 + j) as f64 * 1e-3).collect())
            .collect();
        let serial = map(&jobs, 1, |v| v.iter().sum::<f64>());
        for threads in [2, 4, 8] {
            let par = map(&jobs, threads, |v| v.iter().sum::<f64>());
            assert_eq!(serial, par);
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items = vec![1, 2, 3, 4];
        let _ = map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn map_catching_contains_panics_to_their_slot() {
        let items: Vec<usize> = (0..23).collect();
        for threads in [1, 2, 4, 8] {
            let out = map_catching(&items, threads, |&x| {
                if x % 7 == 3 {
                    panic!("poisoned item {x}");
                }
                x * 10
            });
            assert_eq!(out.len(), items.len(), "threads = {threads}");
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    assert_eq!(r.as_ref().err(), Some(&format!("poisoned item {i}")));
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i * 10)));
                }
            }
        }
    }

    #[test]
    fn map_catching_recovers_string_and_str_payloads() {
        let out = map_catching(&[0, 1], 1, |&x| {
            if x == 0 {
                panic!("static str");
            }
            std::panic::panic_any(String::from("owned string"));
        });
        let _: &Vec<Result<(), String>> = &out;
        assert_eq!(
            out[0].as_ref().err().map(String::as_str),
            Some("static str")
        );
        assert_eq!(
            out[1].as_ref().err().map(String::as_str),
            Some("owned string")
        );
    }

    #[test]
    fn run_catching_contains_and_passes_through() {
        assert_eq!(run_catching(|| 6 * 7), Ok(42));
        let err = run_catching(|| -> u32 { panic!("request poisoned") });
        assert_eq!(err, Err("request poisoned".to_owned()));
    }

    #[test]
    fn map_catching_matches_map_when_nothing_panics() {
        let items: Vec<u64> = (0..50).collect();
        let plain = map(&items, 4, |&x| x * x);
        let caught = map_catching(&items, 4, |&x| x * x);
        assert_eq!(
            plain,
            caught.into_iter().map(Result::unwrap).collect::<Vec<_>>()
        );
    }
}
