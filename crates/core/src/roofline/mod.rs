//! Per-metric piecewise-linear roofline models (paper Section III-B/III-D).
//!
//! Each SPIRE roofline maps one metric's operational intensity `I_x` to an
//! upper bound on throughput. The fitted function is split at the
//! highest-throughput training sample (the *apex*):
//!
//! * **left** of the apex the metric is assumed negatively associated with
//!   performance, and the fit is an increasing, concave-down chain of
//!   segments from the origin (a Jarvis-march upper hull, Fig. 5);
//! * **right** of the apex the metric is assumed positively associated, and
//!   the fit is a decreasing, concave-up chain selected by a shortest-path
//!   search over the Pareto front (Fig. 6), ending in a horizontal *tail*
//!   at the height observed for `I_x = ∞` samples.

mod kernel;
mod right;

pub use right::{fit_right_front, RightRegion};
pub(crate) use right::{fit_right_front_with, PrefixSums};

#[cfg(any(test, feature = "reference-fit"))]
pub use right::reference;

use serde::de::Deserializer;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SpireError};
use crate::geometry::{self, ge_approx, Point};
use crate::sample::{MetricColumn, MetricId, Sample};

/// Strategy for the region right of the apex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RightFitMode {
    /// The paper's algorithm: graph search over the Pareto front.
    #[default]
    Graph,
    /// Treat the metric as purely negatively associated with performance:
    /// hold the apex height for all intensities at or beyond the apex.
    ///
    /// This sidesteps the failure mode the paper observes on its `BP.1`
    /// roofline (Fig. 7 left), where sparse high-intensity samples make the
    /// right fit drop inaccurately.
    Plateau,
    /// Choose between [`Graph`](RightFitMode::Graph) and
    /// [`Plateau`](RightFitMode::Plateau) per metric by testing whether the
    /// right-region samples actually trend downward (a robust-trend
    /// extension of the paper's split heuristic; see
    /// [`FitOptions::auto_trend_threshold`]).
    Auto,
}

/// Options controlling how a roofline is fitted.
///
/// The defaults reproduce the paper's algorithm exactly.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FitOptions {
    /// How to fit the region right of the apex.
    pub right_fit: RightFitMode,
    /// For [`RightFitMode::Auto`]: the Pearson correlation between
    /// intensity and throughput over right-region samples below which the
    /// region is considered genuinely decreasing and the graph fit is used.
    /// Must lie in `[-1, 0]`. Default `-0.1`.
    pub auto_trend_threshold: f64,
    /// Pareto-front size beyond which [`thin_front`](FitOptions::thin_front)
    /// (when enabled) thins the front before the right-region fit. Default
    /// `2048`.
    ///
    /// The limit dates from the original `O(front³)` graph search, where it
    /// defaulted to `256` and was applied unconditionally; the fit is now
    /// `O(front²)`, so by default the full front is fitted exactly and this
    /// value only takes effect when thinning is explicitly enabled.
    pub max_front_size: usize,
    /// Opt-in fidelity/memory trade-off: when `true`, fronts larger than
    /// [`max_front_size`](FitOptions::max_front_size) are thinned to that
    /// size (keeping both extremes, evenly spaced interior picks) and a
    /// [`ThinningNotice`] is reported through the logged fit entry points
    /// (routed onto the diagnostics bus as an
    /// [`Event::FrontThinned`](crate::pipeline::Event::FrontThinned)).
    /// When `false` (the default) the front is never thinned. Default
    /// `false`.
    pub thin_front: bool,
}

/// One lossy front-thinning decision made during a fit, reported by
/// [`PiecewiseRoofline::fit_column_logged`] so callers can surface it on
/// the diagnostics bus instead of losing it to stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThinningNotice {
    /// The metric whose front was thinned.
    pub metric: MetricId,
    /// Front size before thinning.
    pub original: usize,
    /// Front size after thinning.
    pub retained: usize,
    /// The configured [`FitOptions::max_front_size`] cap.
    pub cap: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            right_fit: RightFitMode::Graph,
            auto_trend_threshold: -0.1,
            max_front_size: 2048,
            thin_front: false,
        }
    }
}

/// Manual impl so options serialized before the `thin_front` field existed
/// (when thinning at `max_front_size` was unconditional) still deserialize;
/// a missing `thin_front` means `false`.
impl<'de> Deserialize<'de> for FitOptions {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Wire {
            right_fit: RightFitMode,
            auto_trend_threshold: f64,
            max_front_size: usize,
            thin_front: Option<bool>,
        }
        let w = Wire::deserialize(deserializer)?;
        Ok(FitOptions {
            right_fit: w.right_fit,
            auto_trend_threshold: w.auto_trend_threshold,
            max_front_size: w.max_front_size,
            thin_front: w.thin_front.unwrap_or(false),
        })
    }
}

impl FitOptions {
    /// Validates the option values.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::InvalidConfig`] if `auto_trend_threshold` is
    /// outside `[-1, 0]` or `max_front_size` is less than 2.
    pub fn validate(&self) -> Result<()> {
        if !(-1.0..=0.0).contains(&self.auto_trend_threshold) {
            return Err(SpireError::InvalidConfig {
                field: "auto_trend_threshold",
                reason: format!("must be within [-1, 0], got {}", self.auto_trend_threshold),
            });
        }
        if self.max_front_size < 2 {
            return Err(SpireError::InvalidConfig {
                field: "max_front_size",
                reason: format!("must be at least 2, got {}", self.max_front_size),
            });
        }
        Ok(())
    }
}

/// The internal shape of a fitted roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Shape {
    /// Every training sample had infinite intensity (`M_x = 0` throughout):
    /// the roofline is a constant at the maximum observed throughput.
    Constant(f64),
    /// The general case: a left hull up to the apex and a right region
    /// beyond it.
    Full {
        /// Knots of the left region, from the origin to the apex
        /// (ascending intensity).
        left: Vec<Point>,
        /// The right region (plateau, knots, tail).
        right: RightRegion,
    },
}

/// The intermediate structures of a fit, cloned out for the online trainer
/// so it can classify new samples and patch the right region without
/// refitting the whole column.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FitArtifacts {
    /// Every training sample had infinite intensity; the fit is a constant
    /// at `inf_height` and stays maintainable by a running max.
    Constant {
        /// The maximum observed throughput over the infinite-intensity rows.
        inf_height: f64,
    },
    /// A Graph-mode fit with a non-degenerate apex: the left hull, the
    /// *un-thinned* right-region Pareto front (descending intensity, the
    /// apex last), and the infinite-intensity tail height.
    Graph {
        /// Knots of the left hull, origin to apex (ascending intensity).
        left: Vec<Point>,
        /// The un-thinned Pareto front over points at or beyond the apex.
        front: Vec<Point>,
        /// Maximum throughput over infinite-intensity rows, if any.
        inf_height: Option<f64>,
    },
    /// Any other fit (Auto/Plateau right regions, degenerate hulls): not
    /// incrementally maintainable — every new sample forces a full refit.
    Opaque,
}

/// A fitted per-metric roofline: an upper bound on throughput as a function
/// of one metric's operational intensity.
///
/// ```
/// use spire_core::{FitOptions, PiecewiseRoofline, Sample};
///
/// # fn main() -> Result<(), spire_core::SpireError> {
/// let samples = vec![
///     Sample::new("stalls", 10.0, 10.0, 10.0)?, // I = 1, P = 1
///     Sample::new("stalls", 10.0, 20.0, 5.0)?,  // I = 4, P = 2
///     Sample::new("stalls", 10.0, 30.0, 3.0)?,  // I = 10, P = 3
/// ];
/// let roofline = PiecewiseRoofline::fit(
///     "stalls".into(),
///     samples.iter(),
///     &FitOptions::default(),
/// )?;
/// // More work per stall can only help up to the observed maximum.
/// assert!(roofline.estimate(2.0) <= 3.0);
/// assert_eq!(roofline.estimate(10.0), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseRoofline {
    metric: MetricId,
    shape: Shape,
    training_samples: usize,
}

impl PiecewiseRoofline {
    /// Fits a roofline to `samples`, all of which must belong to `metric`.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyTrainingSet`] if `samples` is empty and
    /// [`SpireError::InvalidConfig`] if `options` fails validation.
    ///
    /// # Panics
    ///
    /// Debug builds assert that every sample's metric equals `metric`.
    pub fn fit<'a, I>(metric: MetricId, samples: I, options: &FitOptions) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Sample>,
    {
        let mut intensities: Vec<f64> = Vec::new();
        let mut throughputs: Vec<f64> = Vec::new();
        for s in samples {
            debug_assert_eq!(s.metric(), &metric, "sample metric mismatch");
            intensities.push(s.intensity());
            throughputs.push(s.throughput());
        }
        Self::fit_slices(metric, &intensities, &throughputs, options).map(|(fit, _)| fit)
    }

    /// Fits a roofline directly from a [`MetricColumn`]'s cached derived
    /// columns, without materializing per-sample rows.
    ///
    /// This is the training hot path: the intensity and throughput slices
    /// are borrowed straight from the column and streamed through the SoA
    /// geometry kernels. The result is identical to running [`fit`] over
    /// the column's rows — both delegate to the same slice-based
    /// implementation.
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::EmptyTrainingSet`] if `column` is empty and
    /// [`SpireError::InvalidConfig`] if `options` fails validation.
    ///
    /// [`fit`]: PiecewiseRoofline::fit
    pub fn fit_column(column: &MetricColumn, options: &FitOptions) -> Result<Self> {
        Self::fit_column_logged(column, options).map(|(fit, _)| fit)
    }

    /// [`fit_column`](PiecewiseRoofline::fit_column), additionally
    /// reporting any lossy [`ThinningNotice`] the fit made instead of
    /// printing it. The fitted roofline is identical to `fit_column`'s.
    ///
    /// # Errors
    ///
    /// Same as [`fit_column`](PiecewiseRoofline::fit_column).
    pub fn fit_column_logged(
        column: &MetricColumn,
        options: &FitOptions,
    ) -> Result<(Self, Option<ThinningNotice>)> {
        Self::fit_slices(
            column.metric().clone(),
            column.intensities(),
            column.throughputs(),
            options,
        )
    }

    /// [`fit_column_logged`](PiecewiseRoofline::fit_column_logged),
    /// additionally returning the [`FitArtifacts`] the online trainer
    /// needs to maintain the fit incrementally (the left hull, the
    /// *un-thinned* Pareto front, and the infinite-intensity tail height).
    ///
    /// The fitted roofline is bit-identical to `fit_column_logged`'s —
    /// both run the same slice fit; this entry point only additionally
    /// clones out the intermediate structures.
    ///
    /// # Errors
    ///
    /// Same as [`fit_column`](PiecewiseRoofline::fit_column).
    pub(crate) fn fit_column_seeded(
        column: &MetricColumn,
        options: &FitOptions,
    ) -> Result<(Self, Option<ThinningNotice>, FitArtifacts)> {
        let (fit, notice, artifacts) = Self::fit_slices_impl(
            column.metric().clone(),
            column.intensities(),
            column.throughputs(),
            options,
            true,
        )?;
        Ok((
            fit,
            notice,
            artifacts.expect("artifacts requested from the seeded fit"),
        ))
    }

    /// The shared slice-based fit: `intensities[i]`/`throughputs[i]`
    /// describe sample `i`. Rows with infinite intensity feed the right
    /// region's tail height; finite rows feed the hull and Pareto front.
    fn fit_slices(
        metric: MetricId,
        intensities: &[f64],
        throughputs: &[f64],
        options: &FitOptions,
    ) -> Result<(Self, Option<ThinningNotice>)> {
        Self::fit_slices_impl(metric, intensities, throughputs, options, false)
            .map(|(fit, notice, _)| (fit, notice))
    }

    /// The fit body. `want_artifacts` gates the extra clones that seed the
    /// online trainer's incremental state; the batch hot path passes
    /// `false` and pays nothing.
    fn fit_slices_impl(
        metric: MetricId,
        intensities: &[f64],
        throughputs: &[f64],
        options: &FitOptions,
        want_artifacts: bool,
    ) -> Result<(Self, Option<ThinningNotice>, Option<FitArtifacts>)> {
        options.validate()?;
        debug_assert_eq!(intensities.len(), throughputs.len());
        let count = intensities.len();
        if count == 0 {
            return Err(SpireError::EmptyTrainingSet {
                metric: Some(metric.to_string()),
            });
        }
        let mut inf_height: Option<f64> = None;
        let mut any_finite = false;
        for (&i, &p) in intensities.iter().zip(throughputs) {
            if i.is_finite() {
                any_finite = true;
            } else {
                inf_height = Some(inf_height.map_or(p, |h: f64| h.max(p)));
            }
        }
        if !any_finite {
            let height = inf_height.unwrap_or(0.0);
            let artifacts = want_artifacts.then_some(FitArtifacts::Constant { inf_height: height });
            return Ok((
                PiecewiseRoofline {
                    metric,
                    shape: Shape::Constant(height),
                    training_samples: count,
                },
                None,
                artifacts,
            ));
        }

        // Left region: hull from origin to the apex (the SoA kernel skips
        // the infinite-intensity rows).
        let left = geometry::upper_hull_from_origin_soa(intensities, throughputs);
        let apex = *left.last().expect("hull always contains the origin");

        // Right region: Pareto front over samples at or beyond the apex.
        let mut right_points: Vec<Point> = intensities
            .iter()
            .zip(throughputs)
            .filter(|(&i, _)| i.is_finite() && i >= apex.x)
            .map(|(&i, &p)| Point::new(i, p))
            .collect();
        if right_points.is_empty() {
            // Possible only when every finite sample has zero throughput
            // and sits left of the apex; fall back to the apex alone.
            right_points.push(apex);
        }
        // `front` stays un-thinned (it seeds the online trainer's
        // incremental state, which must track the exact batch front);
        // thinning, when enabled, works on a copy for the fit itself.
        let front = {
            let mut f = geometry::pareto_front(&right_points);
            if f.is_empty() {
                f.push(apex);
            }
            f
        };
        let mut notice = None;
        let thinned: Option<Vec<Point>> =
            if options.thin_front && front.len() > options.max_front_size {
                let original = front.len();
                let mut f = front.clone();
                thin_front(&mut f, options.max_front_size);
                notice = Some(ThinningNotice {
                    metric: metric.clone(),
                    original,
                    retained: f.len(),
                    cap: options.max_front_size,
                });
                Some(f)
            } else {
                None
            };
        let fit_front: &[Point] = thinned.as_deref().unwrap_or(&front);

        let use_graph = match options.right_fit {
            RightFitMode::Graph => true,
            RightFitMode::Plateau => false,
            RightFitMode::Auto => {
                // Judge the trend on points strictly beyond the apex: the
                // apex itself is the maximum by construction and would bias
                // the correlation negative.
                let beyond: Vec<Point> = right_points
                    .iter()
                    .copied()
                    .filter(|p| p.x > apex.x)
                    .collect();
                beyond.len() >= 3 && right_trend(&beyond) <= options.auto_trend_threshold
            }
        };

        let right = if use_graph {
            right::fit_right_front(fit_front, inf_height)
        } else {
            // Plateau mode must still bound infinite-intensity samples.
            let height = inf_height.map_or(apex.y, |h| h.max(apex.y));
            RightRegion::constant(height.max(apex.y))
        };

        // A fit is incrementally maintainable only in pure Graph mode with
        // a non-degenerate apex: Auto re-judges the right-region trend over
        // *all* right points (which the trainer does not keep), Plateau's
        // height is not front-driven, and the degenerate zero-throughput
        // fallbacks bypass the front entirely.
        let artifacts = want_artifacts.then(|| {
            let maintainable = options.right_fit == RightFitMode::Graph
                && apex.y > 0.0
                && front.last() == Some(&apex);
            if maintainable {
                FitArtifacts::Graph {
                    left: left.clone(),
                    front: front.clone(),
                    inf_height,
                }
            } else {
                FitArtifacts::Opaque
            }
        });
        Ok((
            PiecewiseRoofline {
                metric,
                shape: Shape::Full { left, right },
                training_samples: count,
            },
            notice,
            artifacts,
        ))
    }

    /// Rebuilds a Graph-mode roofline from its maintained parts after a
    /// right-region change: the left hull is reused as-is and only the
    /// right region is refitted from the (already updated) Pareto front
    /// and its patched prefix sums.
    ///
    /// `front` is the *un-thinned* maintained front with `sums` in sync;
    /// thinning, when enabled and needed, is applied to a copy with fresh
    /// sums — exactly what the batch fit does — so the result is
    /// bit-identical to refitting the whole column.
    pub(crate) fn refit_graph_right(
        metric: MetricId,
        left: &[Point],
        front: &[Point],
        sums: &PrefixSums,
        inf_height: Option<f64>,
        training_samples: usize,
        options: &FitOptions,
    ) -> (Self, Option<ThinningNotice>) {
        let mut notice = None;
        let right = if options.thin_front && front.len() > options.max_front_size {
            let original = front.len();
            let mut thinned = front.to_vec();
            thin_front(&mut thinned, options.max_front_size);
            notice = Some(ThinningNotice {
                metric: metric.clone(),
                original,
                retained: thinned.len(),
                cap: options.max_front_size,
            });
            let fresh = PrefixSums::new(&thinned);
            fit_right_front_with(&thinned, &fresh, inf_height)
        } else {
            fit_right_front_with(front, sums, inf_height)
        };
        (
            PiecewiseRoofline {
                metric,
                shape: Shape::Full {
                    left: left.to_vec(),
                    right,
                },
                training_samples,
            },
            notice,
        )
    }

    /// Rebuilds a constant (all-infinite-intensity) roofline — the online
    /// trainer's counterpart of the `!any_finite` branch of the fit.
    pub(crate) fn constant_roofline(
        metric: MetricId,
        height: f64,
        training_samples: usize,
    ) -> Self {
        PiecewiseRoofline {
            metric,
            shape: Shape::Constant(height),
            training_samples,
        }
    }

    /// Patches the recorded training-sample count (used by the online
    /// trainer when new samples leave a metric's fit untouched but the
    /// count — which a batch retrain would update — must stay in sync).
    pub(crate) fn set_training_samples(&mut self, count: usize) {
        self.training_samples = count;
    }

    /// The metric this roofline models.
    pub fn metric(&self) -> &MetricId {
        &self.metric
    }

    /// Number of training samples the fit consumed.
    pub fn training_samples(&self) -> usize {
        self.training_samples
    }

    /// Estimates the maximum attainable throughput at operational intensity
    /// `intensity` (which may be `f64::INFINITY` for `M_x = 0` samples).
    ///
    /// Non-positive intensities estimate zero throughput: zero work per
    /// metric event can only mean zero work.
    pub fn estimate(&self, intensity: f64) -> f64 {
        match &self.shape {
            Shape::Constant(h) => *h,
            Shape::Full { left, right } => {
                if intensity <= 0.0 {
                    return 0.0;
                }
                let apex = *left.last().expect("hull is non-empty");
                if intensity < apex.x {
                    geometry::piecewise_eval(left, intensity)
                } else {
                    right.eval(intensity)
                }
            }
        }
    }

    /// Estimates the maximum attainable throughput for one sample, using
    /// its intensity.
    pub fn estimate_sample(&self, sample: &Sample) -> f64 {
        self.estimate(sample.intensity())
    }

    /// Batch SoA form of [`estimate`](PiecewiseRoofline::estimate): clears
    /// `out` and fills it with the estimate for each intensity, in order.
    ///
    /// This is the estimation hot path, implemented by the chunked
    /// [`kernel`] module: intensities are processed in fixed-width chunks,
    /// each chunk is classified into regions with a branchless bitmask,
    /// and single-region chunks run tight fill or interpolation loops
    /// (autovectorized, or explicit SSE2 behind the `simd` feature) while
    /// mixed chunks keep the exact scalar branch chain. Every output is
    /// bit-identical to calling `estimate` on the same intensity — see the
    /// kernel module docs for why the fast paths preserve bits.
    pub fn estimate_soa(&self, intensities: &[f64], out: &mut Vec<f64>) {
        self.estimate_soa_chunked(intensities, out, kernel::DEFAULT_WIDTH);
    }

    /// [`estimate_soa`](PiecewiseRoofline::estimate_soa) with an explicit
    /// kernel chunk width. The width is a pure performance knob — outputs
    /// are bit-identical for every width — and is exposed so the
    /// equivalence proptests can sweep it.
    #[doc(hidden)]
    pub fn estimate_soa_chunked(&self, intensities: &[f64], out: &mut Vec<f64>, width: usize) {
        out.clear();
        out.reserve(intensities.len());
        match &self.shape {
            Shape::Constant(h) => {
                // `estimate` returns the constant height unconditionally —
                // including for non-positive and NaN intensities.
                out.resize(intensities.len(), *h);
            }
            Shape::Full { left, right } => {
                kernel::estimate_into(left, right, intensities, out, width);
            }
        }
    }

    /// Batch estimate over a [`MetricColumn`]'s cached intensity column,
    /// one output per sample in column order.
    ///
    /// Results are bit-identical to mapping
    /// [`estimate`](PiecewiseRoofline::estimate) over
    /// [`MetricColumn::intensities`]; see
    /// [`estimate_soa`](PiecewiseRoofline::estimate_soa) for why the batch
    /// form is faster.
    pub fn estimate_column(&self, column: &MetricColumn) -> Vec<f64> {
        let mut out = Vec::new();
        self.estimate_soa(column.intensities(), &mut out);
        out
    }

    /// The apex: the highest-throughput training sample the fit split at,
    /// or `None` for constant (all-infinite-intensity) rooflines.
    pub fn apex(&self) -> Option<Point> {
        match &self.shape {
            Shape::Constant(_) => None,
            Shape::Full { left, .. } => left.last().copied(),
        }
    }

    /// Knots of the left region (origin to apex, ascending intensity);
    /// empty for constant rooflines.
    pub fn left_knots(&self) -> &[Point] {
        match &self.shape {
            Shape::Constant(_) => &[],
            Shape::Full { left, .. } => left,
        }
    }

    /// The fitted right region, or `None` for constant rooflines.
    pub fn right_region(&self) -> Option<&RightRegion> {
        match &self.shape {
            Shape::Constant(_) => None,
            Shape::Full { right, .. } => Some(right),
        }
    }

    /// Returns `true` if the roofline degenerated to a constant because all
    /// training samples had infinite intensity.
    pub fn is_constant(&self) -> bool {
        matches!(self.shape, Shape::Constant(_))
    }

    /// Checks the structural invariants every usable roofline must satisfy:
    ///
    /// * all knot coordinates finite, with non-negative heights;
    /// * left region from the origin, strictly increasing in intensity,
    ///   non-decreasing and concave-down in throughput (up to [`EPS`]
    ///   tolerances, like the fit itself);
    /// * right region strictly increasing in intensity, non-increasing and
    ///   concave-up in throughput, starting at or beyond the apex, with no
    ///   knot above the plateau;
    /// * plateau, tail, and fit error finite and non-negative.
    ///
    /// The fit upholds these by construction over validated samples, but a
    /// roofline can also arrive from hostile places — a fit over poisoned
    /// (NaN/negative) columns, or a deserialized snapshot — so training
    /// quarantine and snapshot loading both run this validator and refuse
    /// models that fail it.
    ///
    /// The tail is *not* required to sit below the interior knots: samples
    /// at `I_x = ∞` can legitimately raise the start height above the
    /// chosen front (see [`RightRegion`]).
    ///
    /// [`EPS`]: crate::geometry::EPS
    ///
    /// # Errors
    ///
    /// Returns [`SpireError::ModelInvariantViolation`] naming the first
    /// violated invariant.
    pub fn validate(&self) -> Result<()> {
        let fail = |invariant: String| {
            Err(SpireError::ModelInvariantViolation {
                metric: self.metric.to_string(),
                invariant,
            })
        };
        let finite_nonneg = |v: f64| v.is_finite() && v >= 0.0;
        match &self.shape {
            Shape::Constant(h) => {
                if !finite_nonneg(*h) {
                    return fail(format!("constant height must be finite and >= 0, got {h}"));
                }
            }
            Shape::Full { left, right } => {
                // Left region: origin-anchored, increasing, concave-down.
                let Some(first) = left.first() else {
                    return fail("left region must contain at least the origin".to_owned());
                };
                if *first != Point::ORIGIN {
                    return fail(format!(
                        "left region must start at the origin, got ({}, {})",
                        first.x, first.y
                    ));
                }
                for k in left {
                    if !finite_nonneg(k.x) || !finite_nonneg(k.y) {
                        return fail(format!(
                            "left knot ({}, {}) must be finite and non-negative",
                            k.x, k.y
                        ));
                    }
                }
                let mut prev_slope = f64::INFINITY;
                for w in left.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    if b.x <= a.x {
                        return fail(format!(
                            "left knots must be strictly increasing in intensity \
                             ({} then {})",
                            a.x, b.x
                        ));
                    }
                    if !ge_approx(b.y, a.y) {
                        return fail(format!(
                            "left region must be non-decreasing ({} then {})",
                            a.y, b.y
                        ));
                    }
                    let slope = a.slope_to(&b);
                    if !ge_approx(prev_slope, slope) {
                        return fail(format!(
                            "left region must be concave-down (slope {prev_slope} \
                             then {slope})"
                        ));
                    }
                    prev_slope = slope;
                }
                let apex = *left.last().expect("checked non-empty above");

                // Right region: decreasing, concave-up, under the plateau.
                if !finite_nonneg(right.plateau) {
                    return fail(format!(
                        "plateau must be finite and >= 0, got {}",
                        right.plateau
                    ));
                }
                if !finite_nonneg(right.tail) {
                    return fail(format!("tail must be finite and >= 0, got {}", right.tail));
                }
                if !finite_nonneg(right.fit_error) {
                    return fail(format!(
                        "fit error must be finite and >= 0, got {}",
                        right.fit_error
                    ));
                }
                for k in &right.knots {
                    if !finite_nonneg(k.x) || !finite_nonneg(k.y) {
                        return fail(format!(
                            "right knot ({}, {}) must be finite and non-negative",
                            k.x, k.y
                        ));
                    }
                    if !ge_approx(right.plateau, k.y) {
                        return fail(format!(
                            "right knot height {} exceeds the plateau {}",
                            k.y, right.plateau
                        ));
                    }
                }
                if let Some(k0) = right.knots.first() {
                    if !ge_approx(k0.x, apex.x) {
                        return fail(format!(
                            "right region must start at or beyond the apex \
                             (first knot at {}, apex at {})",
                            k0.x, apex.x
                        ));
                    }
                }
                let mut prev_slope = f64::NEG_INFINITY;
                for w in right.knots.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    if b.x <= a.x {
                        return fail(format!(
                            "right knots must be strictly increasing in intensity \
                             ({} then {})",
                            a.x, b.x
                        ));
                    }
                    if !ge_approx(a.y, b.y) {
                        return fail(format!(
                            "right region must be non-increasing ({} then {})",
                            a.y, b.y
                        ));
                    }
                    let slope = a.slope_to(&b);
                    if !ge_approx(slope, prev_slope) {
                        return fail(format!(
                            "right region must be concave-up (slope {prev_slope} \
                             then {slope})"
                        ));
                    }
                    prev_slope = slope;
                }
            }
        }
        Ok(())
    }
}

/// Thins an oversized Pareto front to at most `max` points, always keeping
/// the first (rightmost) and last (apex) entries.
fn thin_front(front: &mut Vec<Point>, max: usize) {
    let n = front.len();
    if n <= max {
        return;
    }
    let mut kept = Vec::with_capacity(max);
    kept.push(front[0]);
    // Evenly spaced interior picks.
    for i in 1..max - 1 {
        let idx = i * (n - 1) / (max - 1);
        kept.push(front[idx]);
    }
    kept.push(front[n - 1]);
    kept.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    *front = kept;
}

/// Pearson correlation between intensity and throughput over right-region
/// points; `0.0` when degenerate (fewer than 3 points or zero variance).
fn right_trend(points: &[Point]) -> f64 {
    if points.len() < 3 {
        return 0.0;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.x).sum::<f64>() / n;
    let my = points.iter().map(|p| p.y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p.x - mx;
        let dy = p.y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64, w: f64, m: f64) -> Sample {
        Sample::new("m", t, w, m).unwrap()
    }

    fn fit(samples: &[Sample]) -> PiecewiseRoofline {
        PiecewiseRoofline::fit("m".into(), samples.iter(), &FitOptions::default()).unwrap()
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let err = PiecewiseRoofline::fit("m".into(), std::iter::empty(), &FitOptions::default())
            .unwrap_err();
        assert!(matches!(err, SpireError::EmptyTrainingSet { .. }));
    }

    #[test]
    fn all_infinite_intensity_gives_constant() {
        // metric never fires: M = 0 in every sample.
        let samples = vec![s(10.0, 20.0, 0.0), s(10.0, 30.0, 0.0)];
        let r = fit(&samples);
        assert!(r.is_constant());
        assert_eq!(r.estimate(1.0), 3.0);
        assert_eq!(r.estimate(f64::INFINITY), 3.0);
    }

    #[test]
    fn single_sample_produces_triangle_roofline() {
        // One sample at (I=2, P=1): left segment from origin, plateau after.
        let samples = vec![s(10.0, 10.0, 5.0)];
        let r = fit(&samples);
        assert_eq!(r.estimate(1.0), 0.5);
        assert_eq!(r.estimate(2.0), 1.0);
        assert_eq!(r.estimate(100.0), 1.0);
        assert_eq!(r.estimate(f64::INFINITY), 1.0);
    }

    #[test]
    fn estimate_at_nonpositive_intensity_is_zero() {
        let samples = vec![s(10.0, 10.0, 5.0)];
        let r = fit(&samples);
        assert_eq!(r.estimate(0.0), 0.0);
        assert_eq!(r.estimate(-3.0), 0.0);
    }

    #[test]
    fn fit_is_upper_bound_on_training_samples() {
        let samples = vec![
            s(10.0, 5.0, 10.0), // I 0.5, P 0.5
            s(10.0, 12.0, 8.0), // I 1.5, P 1.2
            s(10.0, 20.0, 5.0), // I 4, P 2
            s(10.0, 25.0, 2.5), // I 10, P 2.5
            s(10.0, 18.0, 1.0), // I 18, P 1.8
            s(10.0, 12.0, 0.5), // I 24, P 1.2
            s(10.0, 8.0, 0.0),  // I inf, P 0.8
        ];
        let r = fit(&samples);
        for smp in &samples {
            let est = r.estimate_sample(smp);
            assert!(
                est >= smp.throughput() - 1e-9,
                "estimate {est} below sample throughput {}",
                smp.throughput()
            );
        }
    }

    #[test]
    fn left_region_is_nondecreasing() {
        let samples = vec![
            s(10.0, 5.0, 10.0),
            s(10.0, 12.0, 8.0),
            s(10.0, 20.0, 5.0),
            s(10.0, 25.0, 2.5),
        ];
        let r = fit(&samples);
        let apex = r.apex().unwrap();
        let mut prev = 0.0;
        let mut x = 0.0;
        while x <= apex.x {
            let v = r.estimate(x.max(1e-12));
            assert!(v >= prev - 1e-9, "left region must be non-decreasing");
            prev = v;
            x += apex.x / 64.0;
        }
    }

    #[test]
    fn plateau_mode_never_decreases_right_of_apex() {
        let samples = [
            s(10.0, 20.0, 5.0), // I 4, P 2 (apex)
            s(10.0, 10.0, 1.0), // I 10, P 1
            s(10.0, 5.0, 0.25), // I 20, P 0.5
        ];
        let opts = FitOptions {
            right_fit: RightFitMode::Plateau,
            ..FitOptions::default()
        };
        let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &opts).unwrap();
        assert_eq!(r.estimate(10.0), 2.0);
        assert_eq!(r.estimate(1e6), 2.0);
    }

    #[test]
    fn graph_mode_decreases_right_of_apex() {
        let samples = vec![
            s(10.0, 20.0, 5.0), // I 4, P 2 (apex)
            s(10.0, 10.0, 1.0), // I 10, P 1
            s(10.0, 5.0, 0.25), // I 20, P 0.5
        ];
        let r = fit(&samples);
        assert!(r.estimate(20.0) < 2.0);
        assert!(r.estimate(20.0) >= 0.5 - 1e-9);
    }

    #[test]
    fn auto_mode_prefers_plateau_for_flat_right_region() {
        // Right-region throughput does not trend downward.
        let samples = [
            s(10.0, 20.0, 5.0), // I 4, P 2 (apex)
            s(10.0, 19.0, 2.0), // I 9.5, P 1.9
            s(10.0, 19.5, 1.0), // I 19.5, P 1.95
            s(10.0, 19.2, 0.5), // I 38.4, P 1.92
        ];
        let opts = FitOptions {
            right_fit: RightFitMode::Auto,
            ..FitOptions::default()
        };
        let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &opts).unwrap();
        // Plateau chosen: no drop at high intensity.
        assert_eq!(r.estimate(1e9), 2.0);
    }

    #[test]
    fn auto_mode_uses_graph_for_decreasing_right_region() {
        let samples = [
            s(10.0, 20.0, 5.0),  // I 4, P 2 (apex)
            s(10.0, 15.0, 1.5),  // I 10, P 1.5
            s(10.0, 10.0, 0.5),  // I 20, P 1.0
            s(10.0, 5.0, 0.125), // I 40, P 0.5
        ];
        let opts = FitOptions {
            right_fit: RightFitMode::Auto,
            ..FitOptions::default()
        };
        let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &opts).unwrap();
        assert!(r.estimate(40.0) < 1.0 + 1e-9);
    }

    #[test]
    fn fit_options_validate_bounds() {
        let bad = FitOptions {
            auto_trend_threshold: 0.5,
            ..FitOptions::default()
        };
        assert!(bad.validate().is_err());
        let bad = FitOptions {
            max_front_size: 1,
            ..FitOptions::default()
        };
        assert!(bad.validate().is_err());
        assert!(FitOptions::default().validate().is_ok());
    }

    #[test]
    fn thinning_is_opt_in_and_bounds_the_front() {
        // 20 right-region Pareto samples on a convex curve; every one is a
        // front point, so an exact fit can (and does) pass through all of
        // them with zero error.
        let mut samples = vec![s(10.0, 40.0, 10.0)]; // apex: I 4, P 4
        for i in 0..20 {
            let x = 5.0 + i as f64;
            let y = 16.0 / x; // convex, decreasing
                              // Sample::new(metric, t, w, m): I = w/m = x, P = w/t = y.
            samples.push(Sample::new("m", 10.0, 10.0 * y, 10.0 * y / x).unwrap());
        }
        let exact_opts = FitOptions {
            max_front_size: 8,
            thin_front: false,
            ..FitOptions::default()
        };
        let exact = PiecewiseRoofline::fit("m".into(), samples.iter(), &exact_opts).unwrap();
        let exact_knots = exact.right_region().unwrap().knots().len();
        assert!(
            exact_knots > 8,
            "without thinning the full front must be fitted (got {exact_knots} knots)"
        );
        assert!(exact.right_region().unwrap().fit_error() < 1e-9);
        exact.validate().unwrap();

        let thinned_opts = FitOptions {
            max_front_size: 8,
            thin_front: true,
            ..FitOptions::default()
        };
        let thinned = PiecewiseRoofline::fit("m".into(), samples.iter(), &thinned_opts).unwrap();
        let thinned_knots = thinned.right_region().unwrap().knots().len();
        assert!(
            thinned_knots <= 8,
            "thinning must cap the front at max_front_size (got {thinned_knots} knots)"
        );
        thinned.validate().unwrap();
    }

    #[test]
    fn fit_options_without_thin_front_field_deserialize_to_disabled() {
        // Options serialized before `thin_front` existed (when thinning at
        // `max_front_size` was unconditional) must still load; the stored
        // front cap is preserved, thinning defaults to off.
        let legacy = r#"{"right_fit":"Graph","auto_trend_threshold":-0.1,"max_front_size":256}"#;
        let opts: FitOptions = serde_json::from_str(legacy).unwrap();
        assert_eq!(opts.right_fit, RightFitMode::Graph);
        assert_eq!(opts.max_front_size, 256);
        assert!(!opts.thin_front);
        // And the current shape round-trips exactly.
        let json = serde_json::to_string(&FitOptions::default()).unwrap();
        let back: FitOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FitOptions::default());
    }

    #[test]
    fn estimate_soa_matches_per_sample_estimate_bitwise() {
        let samples = vec![
            s(10.0, 5.0, 10.0),
            s(10.0, 12.0, 8.0),
            s(10.0, 20.0, 5.0),
            s(10.0, 25.0, 2.5),
            s(10.0, 18.0, 1.0),
            s(10.0, 12.0, 0.5),
            s(10.0, 8.0, 0.0), // I = inf: distinct tail height
        ];
        let r = fit(&samples);
        let region = r.right_region().unwrap().clone();
        let apex = r.apex().unwrap();
        let first = region.knots()[0];
        let last = *region.knots().last().unwrap();
        // Probe every branch: non-positive, left region, exact apex, exact
        // knot boundaries and their neighbours, beyond-tail, infinities,
        // NaN.
        let probes = vec![
            -1.0,
            0.0,
            f64::MIN_POSITIVE,
            apex.x * 0.5,
            apex.x,
            first.x,
            (first.x + last.x) * 0.5,
            last.x,
            last.x + 1.0,
            1e12,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let mut out = Vec::new();
        r.estimate_soa(&probes, &mut out);
        assert_eq!(out.len(), probes.len());
        for (&x, &got) in probes.iter().zip(&out) {
            let want = r.estimate(x);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "estimate_soa({x}) = {got} but estimate({x}) = {want}"
            );
        }

        // Constant rooflines take the hoisted resize path.
        let constant = fit(&[s(10.0, 20.0, 0.0), s(10.0, 30.0, 0.0)]);
        constant.estimate_soa(&probes, &mut out);
        for (&x, &got) in probes.iter().zip(&out) {
            assert_eq!(got.to_bits(), constant.estimate(x).to_bits());
        }

        // The kernel chunk width is a pure performance knob: sweep widths
        // (1 degenerates to the scalar chain; small widths put the branch
        // probes in every chunk position; wide chunks mix all regions) on
        // both a mixed probe vector and homogeneous single-region runs
        // that trigger each fill/interpolation fast path.
        let mut runs = probes.clone();
        runs.extend(std::iter::repeat_n(-2.0, 7)); // all-zero chunk
        runs.extend((1..8).map(|i| apex.x * f64::from(i) / 9.0)); // all-left
        runs.extend(std::iter::repeat_n((first.x + last.x) * 0.5, 7)); // all-span
        runs.extend(std::iter::repeat_n(last.x + 5.0, 7)); // all-tail
        runs.extend(std::iter::repeat_n(f64::NAN, 7)); // all-NaN
        for width in [1, 2, 3, 5, 7, 8, 64, 333] {
            r.estimate_soa_chunked(&runs, &mut out, width);
            for (&x, &got) in runs.iter().zip(&out) {
                let want = r.estimate(x);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "width {width}: estimate_soa_chunked({x}) = {got}, estimate = {want}"
                );
            }
        }
    }

    #[test]
    fn estimate_column_matches_per_sample_estimate_bitwise() {
        let samples = vec![
            s(10.0, 5.0, 10.0),
            s(10.0, 12.0, 8.0),
            s(10.0, 20.0, 5.0),
            s(10.0, 25.0, 2.5),
            s(10.0, 0.0, 2.0), // zero work: I = 0 hits the non-positive arm
            s(10.0, 8.0, 0.0), // I = inf
        ];
        let r = fit(&samples);
        let set: crate::SampleSet = samples.into_iter().collect();
        let col = set.column(&"m".into()).unwrap();
        let batch = r.estimate_column(col);
        assert_eq!(batch.len(), col.len());
        for (&x, &got) in col.intensities().iter().zip(&batch) {
            assert_eq!(got.to_bits(), r.estimate(x).to_bits());
        }
    }

    #[test]
    fn thin_front_keeps_extremes() {
        let mut front: Vec<Point> = (0..100)
            .map(|i| Point::new(100.0 - i as f64, i as f64))
            .collect();
        thin_front(&mut front, 10);
        assert!(front.len() <= 10);
        assert_eq!(front[0], Point::new(100.0, 0.0));
        assert_eq!(*front.last().unwrap(), Point::new(1.0, 99.0));
    }

    #[test]
    fn fit_column_matches_row_fit() {
        let samples = vec![
            s(10.0, 5.0, 10.0),
            s(10.0, 12.0, 8.0),
            s(10.0, 20.0, 5.0),
            s(10.0, 25.0, 2.5),
            s(10.0, 18.0, 1.0),
            s(10.0, 8.0, 0.0), // I = inf
        ];
        let row_fit = fit(&samples);
        let set: crate::SampleSet = samples.into_iter().collect();
        let col = set.column(&"m".into()).unwrap();
        let col_fit = PiecewiseRoofline::fit_column(col, &FitOptions::default()).unwrap();
        assert_eq!(row_fit, col_fit);
    }

    #[test]
    fn roofline_serde_round_trip() {
        let samples = vec![s(10.0, 10.0, 5.0), s(10.0, 20.0, 2.0)];
        let r = fit(&samples);
        let json = serde_json::to_string(&r).unwrap();
        let back: PiecewiseRoofline = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.estimate(3.0), back.estimate(3.0));
    }

    #[test]
    fn zero_work_samples_fit_without_panic() {
        let samples = vec![s(10.0, 0.0, 5.0), s(10.0, 0.0, 2.0)];
        let r = fit(&samples);
        assert_eq!(r.estimate(1.0), 0.0);
    }

    #[test]
    fn validate_accepts_well_formed_fits() {
        let cases: Vec<Vec<Sample>> = vec![
            vec![s(10.0, 10.0, 5.0)],
            vec![s(10.0, 20.0, 0.0), s(10.0, 30.0, 0.0)], // constant
            vec![s(10.0, 0.0, 5.0), s(10.0, 0.0, 2.0)],   // all-zero throughput
            vec![
                s(10.0, 5.0, 10.0),
                s(10.0, 12.0, 8.0),
                s(10.0, 20.0, 5.0),
                s(10.0, 25.0, 2.5),
                s(10.0, 18.0, 1.0),
                s(10.0, 8.0, 0.0),
            ],
        ];
        for samples in cases {
            fit(&samples)
                .validate()
                .expect("fit must satisfy invariants");
        }
    }

    #[test]
    fn validate_rejects_corrupted_shapes() {
        let violation = |shape: Shape| {
            let r = PiecewiseRoofline {
                metric: "m".into(),
                shape,
                training_samples: 1,
            };
            match r.validate() {
                Err(SpireError::ModelInvariantViolation { metric, .. }) => {
                    assert_eq!(metric, "m");
                }
                other => panic!("expected invariant violation, got {other:?}"),
            }
        };

        violation(Shape::Constant(f64::NAN));
        violation(Shape::Constant(-1.0));
        // Left region not starting at the origin.
        violation(Shape::Full {
            left: vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
            right: RightRegion::constant(2.0),
        });
        // Left region decreasing.
        violation(Shape::Full {
            left: vec![Point::ORIGIN, Point::new(1.0, 2.0), Point::new(2.0, 1.0)],
            right: RightRegion::constant(2.0),
        });
        // Left region convex (slopes increasing).
        violation(Shape::Full {
            left: vec![Point::ORIGIN, Point::new(1.0, 0.5), Point::new(2.0, 5.0)],
            right: RightRegion::constant(5.0),
        });
        // Non-finite left knot.
        violation(Shape::Full {
            left: vec![Point::ORIGIN, Point::new(1.0, f64::NAN)],
            right: RightRegion::constant(1.0),
        });
    }

    #[test]
    fn validate_rejects_corrupted_right_regions() {
        let full = |right: RightRegion| Shape::Full {
            left: vec![Point::ORIGIN, Point::new(2.0, 4.0)],
            right,
        };
        let violation = |shape: Shape| {
            let r = PiecewiseRoofline {
                metric: "m".into(),
                shape,
                training_samples: 1,
            };
            assert!(
                matches!(
                    r.validate(),
                    Err(SpireError::ModelInvariantViolation { .. })
                ),
                "shape should be rejected"
            );
        };

        // Increasing right region.
        violation(full(RightRegion {
            plateau: 4.0,
            knots: vec![Point::new(2.0, 3.0), Point::new(4.0, 3.5)],
            tail: 3.5,
            fit_error: 0.0,
        }));
        // Concave-down (slopes decreasing) right region.
        violation(full(RightRegion {
            plateau: 4.0,
            knots: vec![
                Point::new(2.0, 4.0),
                Point::new(3.0, 3.9),
                Point::new(4.0, 1.0),
            ],
            tail: 1.0,
            fit_error: 0.0,
        }));
        // Knot above the plateau.
        violation(full(RightRegion {
            plateau: 4.0,
            knots: vec![Point::new(2.0, 5.0)],
            tail: 1.0,
            fit_error: 0.0,
        }));
        // Right region starting left of the apex.
        violation(full(RightRegion {
            plateau: 4.0,
            knots: vec![Point::new(1.0, 4.0), Point::new(4.0, 1.0)],
            tail: 1.0,
            fit_error: 0.0,
        }));
        // Non-finite fit error.
        violation(full(RightRegion {
            plateau: 4.0,
            knots: vec![Point::new(2.0, 4.0)],
            tail: 4.0,
            fit_error: f64::INFINITY,
        }));
        // NaN plateau (what a fully poisoned column degenerates to).
        violation(full(RightRegion::constant(f64::NAN)));
    }

    #[test]
    fn validate_allows_tail_above_interior_knots() {
        // An I = ∞ sample can raise the start height above the front.
        let r = PiecewiseRoofline {
            metric: "m".into(),
            shape: Shape::Full {
                left: vec![Point::ORIGIN, Point::new(2.0, 4.0)],
                right: RightRegion {
                    plateau: 4.0,
                    knots: vec![Point::new(2.0, 4.0), Point::new(6.0, 1.0)],
                    tail: 10.0,
                    fit_error: 0.0,
                },
            },
            training_samples: 3,
        };
        r.validate().expect("high tail is legitimate");
    }
}
