//! Right-region fitting (paper Section III-D, Fig. 6).
//!
//! The right region of a SPIRE roofline is a series of decreasing,
//! concave-up line segments lying on or above all training samples with
//! intensity at or beyond the apex (the highest-throughput sample). The fit
//! is found by:
//!
//! 1. computing the Pareto front of `(I_x, P)` (all other samples cannot be
//!    touched by a valid decreasing fit and are ignored);
//! 2. building a weighted graph whose vertices are candidate segments
//!    between front samples, with an edge `(X,Y) -> (Y,Z)` when segment
//!    `YZ` is at least as steep as `XY` (preserving concavity), weighted by
//!    `YZ`'s squared overestimation of the front samples it passes over;
//! 3. adding a `Start` vertex (a sample at `I_x = ∞`, or a dummy at the
//!    rightmost front sample's height when none exists) and an `End` vertex
//!    (a special horizontal segment reaching the leftmost front sample);
//! 4. taking the minimum-weight `Start -> End` path with Dijkstra.

use crate::geometry::{ge_approx, Point, EPS};
use crate::graph::{DiGraph, NodeId};

/// The fitted right region of a roofline.
///
/// For intensities `x >= apex.x` the region evaluates as:
///
/// * `apex.y` (the *plateau*, the paper's `End` horizontal) for
///   `x < knots[0].x`;
/// * linear interpolation through `knots` (ascending `x`, ending at the
///   `Start` connection sample) within the knot span;
/// * `tail` (the `Start` height, i.e. the max throughput observed at
///   `I_x = ∞`, or the rightmost front sample's height for a dummy start)
///   for `x` beyond the last knot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RightRegion {
    /// Height of the horizontal plateau between the apex and the first knot.
    pub(crate) plateau: f64,
    /// Chosen Pareto samples, ascending by intensity.
    pub(crate) knots: Vec<Point>,
    /// Value for intensities beyond the last knot (including `I_x = ∞`).
    pub(crate) tail: f64,
    /// Total squared estimation error of the chosen fit (the Dijkstra cost).
    pub(crate) fit_error: f64,
}

impl RightRegion {
    /// Evaluates the region at intensity `x` (which may be `f64::INFINITY`).
    ///
    /// A NaN intensity carries no position information, so the result is
    /// NaN — mirroring the geometry layer, which skips non-finite points
    /// when fitting — rather than an arbitrary interpolation.
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if self.knots.is_empty() {
            return self.tail;
        }
        let first = self.knots[0];
        let last = self.knots[self.knots.len() - 1];
        if x < first.x {
            self.plateau
        } else if x > last.x {
            self.tail
        } else {
            crate::geometry::piecewise_eval(&self.knots, x)
        }
    }

    /// The chosen Pareto knots, ascending by intensity.
    pub fn knots(&self) -> &[Point] {
        &self.knots
    }

    /// Height of the plateau segment (the `End` horizontal).
    pub fn plateau(&self) -> f64 {
        self.plateau
    }

    /// Value beyond the last knot (the `Start` height).
    pub fn tail(&self) -> f64 {
        self.tail
    }

    /// Total squared estimation error of the selected fit.
    pub fn fit_error(&self) -> f64 {
        self.fit_error
    }

    /// A degenerate region that is constant at `height` everywhere.
    pub(crate) fn constant(height: f64) -> Self {
        RightRegion {
            plateau: height,
            knots: Vec::new(),
            tail: height,
            fit_error: 0.0,
        }
    }
}

/// A vertex in the segment graph: a candidate line segment between two
/// front samples (`usize::MAX` encodes the `Start` pseudo-sample `S∞`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegmentVertex {
    /// Index of the right endpoint in the front (or `usize::MAX` for `S∞`).
    from: usize,
    /// Index of the left endpoint in the front.
    to: usize,
}

const START_SAMPLE: usize = usize::MAX;

/// Squared overestimation error of the segment `a -> b` over the front
/// samples strictly between them, or `None` if the segment dips below one.
///
/// `front` is ordered by decreasing intensity.
fn segment_error(front: &[Point], a: usize, b: usize) -> Option<f64> {
    let (pa, pb) = (front[a], front[b]);
    debug_assert!(a < b);
    let mut err = 0.0;
    for q in &front[a + 1..b] {
        let v = if (pb.x - pa.x).abs() < f64::MIN_POSITIVE {
            pa.y.max(pb.y)
        } else {
            pa.y + (q.x - pa.x) * (pb.y - pa.y) / (pb.x - pa.x)
        };
        if !ge_approx(v, q.y) {
            return None;
        }
        let d = (v - q.y).max(0.0);
        err += d * d;
    }
    Some(err)
}

/// Slope of the segment between front samples `a` and `b` (`a` right of
/// `b`, so the slope is measured left-to-right as usual).
fn slope(front: &[Point], a: usize, b: usize) -> f64 {
    front[b].slope_to(&front[a])
}

/// Fits the right region over the Pareto `front` (ordered by decreasing
/// intensity, last element = apex) with optional `start_height` from
/// infinite-intensity samples.
///
/// `front` must be non-empty. Returns a region whose piecewise function
/// lies on or above every front sample.
pub(crate) fn fit_right(front: &[Point], start_height: Option<f64>) -> RightRegion {
    assert!(!front.is_empty(), "right fit requires a non-empty front");
    let k = front.len();
    let apex = front[k - 1];
    let h_start = start_height.unwrap_or(front[0].y);

    if k == 1 {
        // Only the apex: plateau at the apex, tail at the start height.
        return RightRegion {
            plateau: apex.y,
            knots: vec![apex],
            tail: h_start,
            fit_error: 0.0,
        };
    }

    // --- Build the segment graph. -----------------------------------------
    let mut g = DiGraph::new();
    let start = g.add_node();
    let end = g.add_node();
    let mut vertices: Vec<SegmentVertex> = Vec::new();
    let mut vertex_ids: Vec<NodeId> = Vec::new();

    // Start connections: (S∞, c) valid when every front sample strictly
    // right of c lies at or below the start height.
    for c in 0..k {
        if front[..c].iter().all(|q| ge_approx(h_start, q.y)) {
            let id = g.add_node();
            vertices.push(SegmentVertex {
                from: START_SAMPLE,
                to: c,
            });
            vertex_ids.push(id);
            let w: f64 = front[..c]
                .iter()
                .map(|q| {
                    let d = (h_start - q.y).max(0.0);
                    d * d
                })
                .sum();
            g.add_edge(start, id, w);
        } else {
            // Front heights increase leftward, so once one sample exceeds
            // the start height every later c fails too.
            break;
        }
    }

    // Regular segment vertices (a, b), a right of b, segment on/above the
    // front samples between them.
    let mut seg_err = vec![vec![None; k]; k];
    #[allow(clippy::needless_range_loop)]
    for a in 0..k {
        for b in (a + 1)..k {
            if let Some(err) = segment_error(front, a, b) {
                seg_err[a][b] = Some(err);
                let id = g.add_node();
                vertices.push(SegmentVertex { from: a, to: b });
                vertex_ids.push(id);
            }
        }
    }

    // Bucket vertices by their right endpoint so that edge construction
    // only pairs (X, Y) with (Y, Z) candidates.
    let mut by_from: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, v) in vertices.iter().enumerate() {
        if v.from != START_SAMPLE {
            by_from[v.from].push(i);
        }
    }

    // Edges: (X, Y) -> (Y, Z) when YZ is at least as steep as XY.
    for (i, v) in vertices.iter().enumerate() {
        let vi = vertex_ids[i];
        for &j in &by_from[v.to] {
            let w = &vertices[j];
            let prev_slope = if v.from == START_SAMPLE {
                // The initial horizontal has slope 0; any front segment is
                // steeper (the front decreases rightward).
                0.0
            } else {
                slope(front, v.from, v.to)
            };
            let next_slope = slope(front, w.from, w.to);
            let tol = EPS * (1.0 + prev_slope.abs());
            if next_slope <= prev_slope + tol {
                let weight = seg_err[w.from][w.to].expect("vertex implies valid segment");
                g.add_edge(vi, vertex_ids[j], weight);
            }
        }
        // Every vertex has an edge to End: a horizontal segment at the apex
        // height covering the front samples between v.to (inclusive — the
        // horizontal passes over the departure sample as well, unless it is
        // the apex itself) and the apex (exclusive).
        let w_end: f64 = front[v.to..k - 1]
            .iter()
            .map(|q| {
                let d = (apex.y - q.y).max(0.0);
                d * d
            })
            .sum();
        g.add_edge(vi, end, w_end);
    }

    let path = g
        .shortest_path(start, end)
        .expect("start connects to (S∞, 0) which connects to End");

    // --- Decode the path into knots. ---------------------------------------
    // Path nodes: start, v1, v2, .., vn, end. The chosen samples are
    // v1.to, v2.to, ... read right-to-left; the connection sample is v1.to.
    let mut chosen: Vec<usize> = Vec::new();
    for &node in &path.nodes[1..path.nodes.len() - 1] {
        let idx = vertex_ids
            .iter()
            .position(|&id| id == node)
            .expect("interior path nodes are segment vertices");
        let v = vertices[idx];
        if v.from != START_SAMPLE && chosen.is_empty() {
            chosen.push(v.from);
        }
        chosen.push(v.to);
    }
    debug_assert!(!chosen.is_empty());
    // `chosen` is ordered right-to-left (increasing front index = decreasing
    // x ... front index increases leftward). Convert to ascending-x knots.
    let mut knots: Vec<Point> = chosen.iter().map(|&i| front[i]).collect();
    knots.reverse();

    RightRegion {
        plateau: apex.y,
        knots,
        tail: h_start,
        fit_error: path.cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// The paper's Fig. 6 worked example: Pareto samples A(10,1), B(8,2),
    /// C(6,3), D(4,4), E(2,5) plus the BD edge whose weight is the squared
    /// overestimation of C.
    fn paper_front() -> Vec<Point> {
        pts(&[(10.0, 1.0), (8.0, 2.0), (6.0, 3.0), (4.0, 4.0), (2.0, 5.0)])
    }

    #[test]
    fn segment_error_matches_paper_bd_example() {
        // Paper: the BD line overestimates C "with a squared error of 11".
        // With the paper's plot coordinates that value depends on the exact
        // sample heights; with A..E as placed here, line B(8,2)-D(4,4) at
        // C.x = 6 gives 3.0 => error (3-3)^2 = 0. Use a C that sits below:
        let front = pts(&[(8.0, 2.0), (6.0, 2.5), (4.0, 4.0)]);
        // line from (8,2) to (4,4) at x=6 -> 3.0; error (3.0-2.5)^2 = 0.25
        let err = segment_error(&front, 0, 2).unwrap();
        assert!((err - 0.25).abs() < 1e-12);
    }

    #[test]
    fn segment_below_a_sample_is_invalid() {
        let front = pts(&[(8.0, 2.0), (6.0, 3.5), (4.0, 4.0)]);
        // line (8,2)-(4,4) at x=6 -> 3.0 < 3.5
        assert!(segment_error(&front, 0, 2).is_none());
    }

    #[test]
    fn collinear_front_fits_exactly_with_zero_error() {
        let front = pts(&[(8.0, 1.0), (6.0, 2.0), (4.0, 3.0), (2.0, 4.0)]);
        let out = fit_right(&front, None);
        assert!(out.fit_error < 1e-12);
        for q in &front {
            assert!(ge_approx(out.eval(q.x), q.y));
            assert!(out.eval(q.x) <= q.y + 1e-9);
        }
    }

    #[test]
    fn fit_lies_on_or_above_all_front_samples() {
        let front = paper_front();
        let out = fit_right(&front, None);
        for q in &front {
            assert!(
                ge_approx(out.eval(q.x), q.y),
                "fit({}) = {} below {}",
                q.x,
                out.eval(q.x),
                q.y
            );
        }
    }

    #[test]
    fn plateau_holds_at_apex_and_beyond_left_knot() {
        let front = paper_front();
        let out = fit_right(&front, None);
        // Between apex x=2 and the first knot the fit is the apex height.
        assert_eq!(out.eval(2.0), 5.0);
    }

    #[test]
    fn tail_uses_start_height_when_infinite_samples_exist() {
        let front = paper_front();
        let out = fit_right(&front, Some(1.5));
        assert_eq!(out.eval(f64::INFINITY), 1.5);
        assert_eq!(out.eval(1e12), 1.5);
    }

    #[test]
    fn dummy_start_uses_rightmost_front_height() {
        let front = paper_front();
        let out = fit_right(&front, None);
        assert_eq!(out.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn nan_intensity_evaluates_to_nan() {
        // Regression: a NaN intensity used to fall through both boundary
        // comparisons into `piecewise_eval` and return an arbitrary
        // interpolation between the first knots.
        let out = fit_right(&paper_front(), None);
        assert!(out.eval(f64::NAN).is_nan());
        // The degenerate constant region propagates NaN too.
        let constant = RightRegion::constant(3.0);
        assert!(constant.eval(f64::NAN).is_nan());
        assert_eq!(constant.eval(1.0), 3.0);
    }

    #[test]
    fn single_sample_front_is_a_plateau() {
        let front = pts(&[(3.0, 7.0)]);
        let out = fit_right(&front, None);
        assert_eq!(out.eval(3.0), 7.0);
        assert_eq!(out.eval(100.0), 7.0);
    }

    #[test]
    fn single_sample_front_with_infinite_tail() {
        let front = pts(&[(3.0, 7.0)]);
        let out = fit_right(&front, Some(2.0));
        assert_eq!(out.eval(3.0), 7.0);
        assert_eq!(out.eval(f64::INFINITY), 2.0);
    }

    #[test]
    fn concavity_holds_on_chosen_knots() {
        let front = pts(&[
            (20.0, 0.5),
            (12.0, 1.2),
            (9.0, 2.8),
            (6.0, 3.1),
            (4.0, 4.5),
            (2.0, 6.0),
        ]);
        let out = fit_right(&front, None);
        let knots = out.knots();
        let slopes: Vec<f64> = knots.windows(2).map(|w| w[0].slope_to(&w[1])).collect();
        // Ascending x => slopes must be non-increasing in steepness going
        // right, i.e. increasing (toward 0) with x: concave-up.
        for w in slopes.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "right-region knots must be concave-up: slopes {slopes:?}"
            );
        }
        for s in &slopes {
            assert!(*s <= 1e-9, "right-region segments must be decreasing");
        }
    }

    #[test]
    fn low_start_height_still_finds_a_path() {
        // Start height below every front sample: connection forced at the
        // rightmost front sample.
        let front = paper_front();
        let out = fit_right(&front, Some(0.1));
        assert_eq!(out.tail(), 0.1);
        assert_eq!(out.eval(10.0), 1.0);
    }

    #[test]
    fn high_start_height_may_skip_front_samples() {
        // Start height above everything: the fit may connect anywhere; the
        // error-minimizing path still covers all samples.
        let front = paper_front();
        let out = fit_right(&front, Some(10.0));
        for q in &front {
            assert!(ge_approx(out.eval(q.x), q.y));
        }
        assert_eq!(out.eval(f64::INFINITY), 10.0);
    }
}
