//! Right-region fitting (paper Section III-D, Fig. 6).
//!
//! The right region of a SPIRE roofline is a series of decreasing,
//! concave-up line segments lying on or above all training samples with
//! intensity at or beyond the apex (the highest-throughput sample). The
//! paper phrases the fit as a shortest-path search over a graph whose
//! vertices are candidate segments between Pareto-front samples; this
//! module solves the same optimization directly, in `O(k² log k)` for a
//! front of `k` samples, without materializing the graph:
//!
//! 1. compute the Pareto front of `(I_x, P)` (all other samples cannot be
//!    touched by a valid decreasing fit and are ignored);
//! 2. score candidate segments in O(1) each via closed-form squared-error
//!    expressions over prefix sums of `x, x², y, y², xy` ([`PrefixSums`]);
//! 3. decide segment feasibility (on-or-above every interior sample) in
//!    amortized O(1) per candidate with a visibility walk per junction: a
//!    chord clears its interior iff its slope does not exceed the running
//!    minimum slope from the junction to any interior sample;
//! 4. run a topological dynamic program over segments ordered by their
//!    right endpoint (the graph is a DAG: edges only go from `(a, b)` to
//!    `(b, z)` with `b > a`, so processing junctions in front order
//!    finalizes every predecessor before it is needed), picking for each
//!    segment the cheapest concave predecessor via a slope-sorted
//!    prefix-minimum instead of a binary-heap Dijkstra.
//!
//! The previous O(k³) graph construction + Dijkstra implementation is kept
//! verbatim (modulo the shared degenerate-`dx` fix) in [`reference`] as an
//! executable specification; a proptest below asserts the two agree on
//! random fronts, and `spire-bench` compares their runtime under the
//! `reference-fit` feature.

use crate::geometry::{approx_coincident_x, ge_approx, Point, EPS};

/// The fitted right region of a roofline.
///
/// For intensities `x >= apex.x` the region evaluates as:
///
/// * `apex.y` (the *plateau*, the paper's `End` horizontal) for
///   `x < knots[0].x`;
/// * linear interpolation through `knots` (ascending `x`, ending at the
///   `Start` connection sample) within the knot span — including both
///   boundaries: `x == knots[0].x` evaluates to `knots[0].y` (not the
///   plateau) and `x == knots[last].x` to `knots[last].y` (not the tail);
/// * `tail` (the `Start` height, i.e. the max throughput observed at
///   `I_x = ∞`, or the rightmost front sample's height for a dummy start)
///   for `x` beyond the last knot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RightRegion {
    /// Height of the horizontal plateau between the apex and the first knot.
    pub(crate) plateau: f64,
    /// Chosen Pareto samples, ascending by intensity.
    pub(crate) knots: Vec<Point>,
    /// Value for intensities beyond the last knot (including `I_x = ∞`).
    pub(crate) tail: f64,
    /// Total squared estimation error of the chosen fit (the path cost).
    pub(crate) fit_error: f64,
}

impl RightRegion {
    /// Evaluates the region at intensity `x` (which may be `f64::INFINITY`).
    ///
    /// A NaN intensity carries no position information, so the result is
    /// NaN — mirroring the geometry layer, which skips non-finite points
    /// when fitting — rather than an arbitrary interpolation.
    pub fn eval(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if self.knots.is_empty() {
            return self.tail;
        }
        let first = self.knots[0];
        let last = self.knots[self.knots.len() - 1];
        if x < first.x {
            self.plateau
        } else if x > last.x {
            self.tail
        } else {
            crate::geometry::piecewise_eval(&self.knots, x)
        }
    }

    /// The chosen Pareto knots, ascending by intensity.
    pub fn knots(&self) -> &[Point] {
        &self.knots
    }

    /// Height of the plateau segment (the `End` horizontal).
    pub fn plateau(&self) -> f64 {
        self.plateau
    }

    /// Value beyond the last knot (the `Start` height).
    pub fn tail(&self) -> f64 {
        self.tail
    }

    /// Total squared estimation error of the selected fit.
    pub fn fit_error(&self) -> f64 {
        self.fit_error
    }

    /// A degenerate region that is constant at `height` everywhere.
    pub(crate) fn constant(height: f64) -> Self {
        RightRegion {
            plateau: height,
            knots: Vec::new(),
            tail: height,
            fit_error: 0.0,
        }
    }
}

/// Slope of the segment between front samples `a` and `b` (`a` right of
/// `b`, so the slope is measured left-to-right as usual).
fn slope(front: &[Point], a: usize, b: usize) -> f64 {
    front[b].slope_to(&front[a])
}

/// Prefix sums of `x, x², y, y², xy` over the front, enabling O(1)
/// closed-form segment errors: `x[i]` is `Σ front[0..i].x`, and a sum over
/// the half-open index range `[lo, hi)` is `x[hi] - x[lo]`.
///
/// The sums are *patchable*: when a streaming insertion changes the front
/// from index `i` onward, [`PrefixSums::patch`] truncates to the unchanged
/// prefix and re-accumulates only the suffix. Because the accumulation
/// replays the same additions in the same order on the same prefix values,
/// a patched structure is bit-identical to one built fresh with
/// [`PrefixSums::new`] — which is what keeps incrementally maintained fits
/// equal to batch refits.
#[derive(Debug, Clone)]
pub(crate) struct PrefixSums {
    x: Vec<f64>,
    xx: Vec<f64>,
    y: Vec<f64>,
    yy: Vec<f64>,
    xy: Vec<f64>,
}

impl PrefixSums {
    pub(crate) fn new(front: &[Point]) -> Self {
        let k = front.len();
        let mut s = PrefixSums {
            x: Vec::with_capacity(k + 1),
            xx: Vec::with_capacity(k + 1),
            y: Vec::with_capacity(k + 1),
            yy: Vec::with_capacity(k + 1),
            xy: Vec::with_capacity(k + 1),
        };
        s.x.push(0.0);
        s.xx.push(0.0);
        s.y.push(0.0);
        s.yy.push(0.0);
        s.xy.push(0.0);
        s.extend_to(front, 0);
        s
    }

    /// Number of front points the sums cover.
    pub(crate) fn len(&self) -> usize {
        self.x.len() - 1
    }

    /// Re-synchronizes the sums with `front` after it changed at (or after)
    /// index `from`: drops the suffix sums for indices `>= from` and
    /// re-accumulates from the retained prefix. O(front.len() - from).
    pub(crate) fn patch(&mut self, front: &[Point], from: usize) {
        let keep = from.min(self.len());
        self.x.truncate(keep + 1);
        self.xx.truncate(keep + 1);
        self.y.truncate(keep + 1);
        self.yy.truncate(keep + 1);
        self.xy.truncate(keep + 1);
        self.extend_to(front, keep);
    }

    /// Accumulates `front[from..]` onto the existing prefix (which must
    /// already cover exactly `front[..from]`).
    fn extend_to(&mut self, front: &[Point], from: usize) {
        debug_assert_eq!(self.len(), from);
        let (mut x, mut xx, mut y, mut yy, mut xy) = (
            self.x[from],
            self.xx[from],
            self.y[from],
            self.yy[from],
            self.xy[from],
        );
        for p in &front[from..] {
            x += p.x;
            xx += p.x * p.x;
            y += p.y;
            yy += p.y * p.y;
            xy += p.x * p.y;
            self.x.push(x);
            self.xx.push(xx);
            self.y.push(y);
            self.yy.push(yy);
            self.xy.push(xy);
        }
    }
}

/// Squared overestimation of the chord `a -> b` over the interior front
/// samples `a+1 .. b-1`, in O(1) closed form from the prefix sums.
///
/// With the chord `v(x) = c0 + c1·x`, the error `Σ (v(x_q) - y_q)²`
/// expands to
///
/// ```text
/// n·c0² + c1²·Σx² + Σy² + 2·c0·c1·Σx − 2·c0·Σy − 2·c1·Σxy
/// ```
///
/// where every `Σ` ranges over the interior samples and is a prefix-sum
/// difference. When the endpoints are numerically coincident in `x`
/// (`coincident`), the chord degenerates to a vertical stack evaluated as a
/// horizontal at `max(y_a, y_b)`, and the error reduces to
/// `n·v² − 2·v·Σy + Σy²`.
///
/// Feasibility (on-or-above every interior sample) is decided separately by
/// the visibility walk; tiny negative results from floating-point
/// cancellation are clamped to zero.
fn chord_error(front: &[Point], sums: &PrefixSums, a: usize, b: usize, coincident: bool) -> f64 {
    debug_assert!(a < b);
    let n = b - a - 1;
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let (lo, hi) = (a + 1, b);
    let sy = sums.y[hi] - sums.y[lo];
    let syy = sums.yy[hi] - sums.yy[lo];
    let (pa, pb) = (front[a], front[b]);
    if coincident {
        let v = pa.y.max(pb.y);
        (nf * v * v - 2.0 * v * sy + syy).max(0.0)
    } else {
        let sx = sums.x[hi] - sums.x[lo];
        let sxx = sums.xx[hi] - sums.xx[lo];
        let sxy = sums.xy[hi] - sums.xy[lo];
        let c1 = (pb.y - pa.y) / (pb.x - pa.x);
        let c0 = pa.y - c1 * pa.x;
        (nf * c0 * c0 + c1 * c1 * sxx + syy + 2.0 * c0 * c1 * sx - 2.0 * c0 * sy - 2.0 * c1 * sxy)
            .max(0.0)
    }
}

/// Sentinel front index for the `S∞` pseudo-sample (the `Start` side).
const START: u32 = u32::MAX;

/// One reachable DP state: a feasible segment `(from, to)` — or a start
/// connection `(S∞, to)` when `from == START` — stored in `incoming[to]`.
#[derive(Debug, Clone, Copy)]
struct InEntry {
    /// Slope of this segment (`0.0` for the initial `Start` horizontal).
    slope: f64,
    /// Cheapest cost of any concave path from `Start` through this segment.
    cost: f64,
    /// Front index of the segment's right endpoint (`START` for `S∞`).
    from: u32,
    /// Index into `incoming[from]` of this segment's chosen predecessor
    /// (unused for start connections).
    pred: u32,
}

/// Fits the right region over the Pareto `front` with optional
/// `start_height` from infinite-intensity samples.
///
/// `front` must be non-empty, ordered by strictly decreasing intensity and
/// strictly increasing throughput (the [`pareto_front`] order), with the
/// apex last. Returns a region whose piecewise function lies on or above
/// every front sample and whose total squared overestimation of the front
/// is minimal among decreasing concave-up knot chains (the paper's Fig. 6
/// objective).
///
/// This runs in `O(k² log k)` time for a front of `k` samples — the
/// `log k` only from sorting predecessor slopes — and `O(F)` memory, where
/// `F ≤ k(k-1)/2` is the number of *feasible* segments. See the module
/// docs for the algorithm and [`reference`] for the executable O(k³)
/// specification it replaces.
///
/// [`pareto_front`]: crate::geometry::pareto_front
///
/// # Panics
///
/// Panics if `front` is empty.
pub fn fit_right_front(front: &[Point], start_height: Option<f64>) -> RightRegion {
    assert!(!front.is_empty(), "right fit requires a non-empty front");
    fit_right_front_with(front, &PrefixSums::new(front), start_height)
}

/// [`fit_right_front`] with caller-supplied prefix sums over the same
/// front. The online layer maintains its fronts (and sums, via
/// [`PrefixSums::patch`]) under streaming insertion, so a refit does not
/// have to rebuild the sums from scratch. The sums MUST cover exactly
/// `front`; a patched structure is bit-identical to a fresh one, so this
/// produces the same region as [`fit_right_front`].
///
/// # Panics
///
/// Panics if `front` is empty or `sums` does not cover `front`.
pub(crate) fn fit_right_front_with(
    front: &[Point],
    sums: &PrefixSums,
    start_height: Option<f64>,
) -> RightRegion {
    assert!(!front.is_empty(), "right fit requires a non-empty front");
    assert_eq!(
        sums.len(),
        front.len(),
        "prefix sums out of sync with front"
    );
    debug_assert!(
        front.windows(2).all(|w| w[1].x < w[0].x && w[1].y > w[0].y),
        "front must be ordered by strictly decreasing x / strictly increasing y"
    );
    let k = front.len();
    let apex = front[k - 1];
    let h_start = start_height.unwrap_or(front[0].y);

    if k == 1 {
        // Only the apex: plateau at the apex, tail at the start height.
        return RightRegion {
            plateau: apex.y,
            knots: vec![apex],
            tail: h_start,
            fit_error: 0.0,
        };
    }

    // Cost of the closing `End` horizontal from junction b: the apex
    // plateau's squared overestimation of front[b..k-1] (the departure
    // sample inclusive, the apex itself exclusive).
    let mut end_cost = vec![0.0; k];
    for b in (0..k - 1).rev() {
        let d = (apex.y - front[b].y).max(0.0);
        end_cost[b] = end_cost[b + 1] + d * d;
    }

    let mut incoming: Vec<Vec<InEntry>> = vec![Vec::new(); k];
    // Best complete path seen so far: (total cost, junction, entry index).
    // Strict `<` updates keep the first minimum found, which matches the
    // deterministic lowest-node-id tie-break of the reference Dijkstra
    // (start connections are created first, then segments in (a, b) order).
    let mut best_total = f64::INFINITY;
    let mut best_to = 0usize;
    let mut best_entry = 0usize;

    // Start connections (S∞, c): valid while every front sample strictly
    // right of c lies at or below the start height. Front heights increase
    // leftward, so the first sample above the start height ends the scan,
    // and the prefix cost accumulates in the same left-to-right order as
    // the reference's per-connection sums.
    let mut start_cost = 0.0;
    for c in 0..k {
        if c > 0 {
            let q = front[c - 1];
            if !ge_approx(h_start, q.y) {
                break;
            }
            let d = (h_start - q.y).max(0.0);
            start_cost += d * d;
        }
        incoming[c].push(InEntry {
            slope: 0.0,
            cost: start_cost,
            from: START,
            pred: 0,
        });
        let total = start_cost + end_cost[c];
        if total < best_total {
            best_total = total;
            best_to = c;
            best_entry = incoming[c].len() - 1;
        }
    }

    // Topological DP over junctions in front order. Every segment ending at
    // junction j departs from a junction < j, so by the time j is processed
    // `incoming[j]` is final; no heap or global distance array is needed.
    //
    // Scratch buffers, reused across junctions:
    // * `order` — indices of `incoming[j]` sorted by slope descending (ties
    //   by insertion order, for determinism);
    // * `pref_min` — running (cost, entry index) minimum over that order,
    //   so the cheapest concave predecessor of an outgoing segment with
    //   slope s is `pref_min[#eligible - 1]`, where the eligible entries
    //   (those with `s <= slope + tol`) form a prefix of `order`.
    let mut order: Vec<u32> = Vec::new();
    let mut pref_min: Vec<(f64, u32)> = Vec::new();
    for j in 0..k - 1 {
        if incoming[j].is_empty() {
            continue;
        }
        // Segments depart rightward (`b > j`), so splitting after `j` lets
        // the borrow checker see that `entries` and the push targets are
        // disjoint.
        let (head, rest) = incoming.split_at_mut(j + 1);
        let entries = &head[j];
        order.clear();
        order.extend(0..entries.len() as u32);
        order.sort_by(|&p, &q| {
            entries[q as usize]
                .slope
                .total_cmp(&entries[p as usize].slope)
                .then(p.cmp(&q))
        });
        pref_min.clear();
        let mut min_cost = f64::INFINITY;
        let mut min_entry = 0u32;
        for &i in &order {
            let e = entries[i as usize];
            if e.cost < min_cost {
                min_cost = e.cost;
                min_entry = i;
            }
            pref_min.push((min_cost, min_entry));
        }

        // Visibility walk: a chord (j, b) lies on or above every interior
        // sample iff its slope is at most the minimum slope from j to any
        // interior sample (tracked as a running minimum). When the exact
        // test fails, fall back to the reference's tolerant `ge_approx`
        // check at the binding (minimum-slope) sample.
        let pj = front[j];
        let mut min_slope = f64::INFINITY;
        let mut min_at = j;
        for b in (j + 1)..k {
            let pb = front[b];
            let coincident = approx_coincident_x(pj.x, pb.x);
            let s = slope(front, j, b);
            let feasible = if b == j + 1 || coincident || s <= min_slope {
                // No interior samples, a vertical stack (horizontal chord
                // at max(y) clears the increasing interior heights), or the
                // chord is at most as steep as every junction-to-interior
                // slope — which is exactly "on or above every interior
                // sample".
                true
            } else {
                let q = front[min_at];
                let v = pj.y + (q.x - pj.x) * s;
                ge_approx(v, q.y)
            };
            if feasible {
                // Concave predecessors (`s <= slope + tol`) form a prefix
                // of the slope-descending order.
                let eligible = order.partition_point(|&i| {
                    let ps = entries[i as usize].slope;
                    s <= ps + EPS * (1.0 + ps.abs())
                });
                if eligible > 0 {
                    let (pred_cost, pred_entry) = pref_min[eligible - 1];
                    let cost = pred_cost + chord_error(front, sums, j, b, coincident);
                    let target = &mut rest[b - j - 1];
                    target.push(InEntry {
                        slope: s,
                        cost,
                        from: j as u32,
                        pred: pred_entry,
                    });
                    let total = cost + end_cost[b];
                    if total < best_total {
                        best_total = total;
                        best_to = b;
                        best_entry = target.len() - 1;
                    }
                }
            }
            // Ties go to the farther sample: its larger lever arm makes the
            // tolerant fallback check the stricter of the two.
            if s <= min_slope {
                min_slope = s;
                min_at = b;
            }
        }
    }

    // Decode the chosen path by walking predecessor links backwards from
    // the best vertex. Front indices come out descending, which is exactly
    // ascending intensity.
    debug_assert!(
        best_total.is_finite(),
        "(S∞, 0) always yields a complete path"
    );
    let mut knots: Vec<Point> = Vec::new();
    let (mut to, mut entry) = (best_to, best_entry);
    loop {
        let e = incoming[to][entry];
        knots.push(front[to]);
        if e.from == START {
            break;
        }
        to = e.from as usize;
        entry = e.pred as usize;
    }

    RightRegion {
        plateau: apex.y,
        knots,
        tail: h_start,
        fit_error: best_total,
    }
}

/// The original O(k³) right-region fit, retained as an executable
/// specification: explicit segment graph construction (per-pair O(k)
/// feasibility/error scans) followed by binary-heap Dijkstra over
/// [`DiGraph`](crate::graph::DiGraph).
///
/// The production path is [`fit_right_front`]; this module exists so the
/// equivalence proptest and the `spire-bench` speedup measurements (under
/// the `reference-fit` feature) always compare against the real thing
/// rather than a re-derivation. The only change from the original is the
/// degenerate-`dx` guard in [`segment_error`], which now uses the shared
/// relative-epsilon test instead of `< f64::MIN_POSITIVE` (which only
/// caught exact zeros and denormals).
#[cfg(any(test, feature = "reference-fit"))]
pub mod reference {
    use super::{slope, RightRegion};
    use crate::geometry::{approx_coincident_x, ge_approx, Point, EPS};
    use crate::graph::{DiGraph, NodeId};

    /// A vertex in the segment graph: a candidate line segment between two
    /// front samples (`usize::MAX` encodes the `Start` pseudo-sample `S∞`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct SegmentVertex {
        /// Index of the right endpoint in the front (or `usize::MAX`).
        from: usize,
        /// Index of the left endpoint in the front.
        to: usize,
    }

    const START_SAMPLE: usize = usize::MAX;

    /// Squared overestimation error of the segment `a -> b` over the front
    /// samples strictly between them, or `None` if the segment dips below
    /// one (checked per sample with the tolerant `ge_approx`).
    ///
    /// `front` is ordered by decreasing intensity.
    pub fn segment_error(front: &[Point], a: usize, b: usize) -> Option<f64> {
        let (pa, pb) = (front[a], front[b]);
        debug_assert!(a < b);
        let coincident = approx_coincident_x(pa.x, pb.x);
        let mut err = 0.0;
        for q in &front[a + 1..b] {
            let v = if coincident {
                pa.y.max(pb.y)
            } else {
                pa.y + (q.x - pa.x) * (pb.y - pa.y) / (pb.x - pa.x)
            };
            if !ge_approx(v, q.y) {
                return None;
            }
            let d = (v - q.y).max(0.0);
            err += d * d;
        }
        Some(err)
    }

    /// The original graph-based right-region fit over the Pareto `front`
    /// (ordered by decreasing intensity, apex last) with optional
    /// `start_height`; same contract as
    /// [`fit_right_front`](super::fit_right_front).
    ///
    /// # Panics
    ///
    /// Panics if `front` is empty.
    pub fn fit_right(front: &[Point], start_height: Option<f64>) -> RightRegion {
        assert!(!front.is_empty(), "right fit requires a non-empty front");
        let k = front.len();
        let apex = front[k - 1];
        let h_start = start_height.unwrap_or(front[0].y);

        if k == 1 {
            // Only the apex: plateau at the apex, tail at the start height.
            return RightRegion {
                plateau: apex.y,
                knots: vec![apex],
                tail: h_start,
                fit_error: 0.0,
            };
        }

        // --- Build the segment graph. -------------------------------------
        let mut g = DiGraph::new();
        let start = g.add_node();
        let end = g.add_node();
        let mut vertices: Vec<SegmentVertex> = Vec::new();
        let mut vertex_ids: Vec<NodeId> = Vec::new();

        // Start connections: (S∞, c) valid when every front sample strictly
        // right of c lies at or below the start height.
        for c in 0..k {
            if front[..c].iter().all(|q| ge_approx(h_start, q.y)) {
                let id = g.add_node();
                vertices.push(SegmentVertex {
                    from: START_SAMPLE,
                    to: c,
                });
                vertex_ids.push(id);
                let w: f64 = front[..c]
                    .iter()
                    .map(|q| {
                        let d = (h_start - q.y).max(0.0);
                        d * d
                    })
                    .sum();
                g.add_edge(start, id, w);
            } else {
                // Front heights increase leftward, so once one sample
                // exceeds the start height every later c fails too.
                break;
            }
        }

        // Regular segment vertices (a, b), a right of b, segment on/above
        // the front samples between them.
        let mut seg_err = vec![vec![None; k]; k];
        #[allow(clippy::needless_range_loop)]
        for a in 0..k {
            for b in (a + 1)..k {
                if let Some(err) = segment_error(front, a, b) {
                    seg_err[a][b] = Some(err);
                    let id = g.add_node();
                    vertices.push(SegmentVertex { from: a, to: b });
                    vertex_ids.push(id);
                }
            }
        }

        // Bucket vertices by their right endpoint so that edge construction
        // only pairs (X, Y) with (Y, Z) candidates.
        let mut by_from: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, v) in vertices.iter().enumerate() {
            if v.from != START_SAMPLE {
                by_from[v.from].push(i);
            }
        }

        // Edges: (X, Y) -> (Y, Z) when YZ is at least as steep as XY.
        for (i, v) in vertices.iter().enumerate() {
            let vi = vertex_ids[i];
            for &j in &by_from[v.to] {
                let w = &vertices[j];
                let prev_slope = if v.from == START_SAMPLE {
                    // The initial horizontal has slope 0; any front segment
                    // is steeper (the front decreases rightward).
                    0.0
                } else {
                    slope(front, v.from, v.to)
                };
                let next_slope = slope(front, w.from, w.to);
                let tol = EPS * (1.0 + prev_slope.abs());
                if next_slope <= prev_slope + tol {
                    let weight = seg_err[w.from][w.to].expect("vertex implies valid segment");
                    g.add_edge(vi, vertex_ids[j], weight);
                }
            }
            // Every vertex has an edge to End: a horizontal segment at the
            // apex height covering the front samples between v.to
            // (inclusive — the horizontal passes over the departure sample
            // as well, unless it is the apex itself) and the apex
            // (exclusive).
            let w_end: f64 = front[v.to..k - 1]
                .iter()
                .map(|q| {
                    let d = (apex.y - q.y).max(0.0);
                    d * d
                })
                .sum();
            g.add_edge(vi, end, w_end);
        }

        let path = g
            .shortest_path(start, end)
            .expect("start connects to (S∞, 0) which connects to End");

        // --- Decode the path into knots. -----------------------------------
        // Path nodes: start, v1, v2, .., vn, end. The chosen samples are
        // v1.to, v2.to, ... read right-to-left; the connection sample is
        // v1.to.
        let mut chosen: Vec<usize> = Vec::new();
        for &node in &path.nodes[1..path.nodes.len() - 1] {
            let idx = vertex_ids
                .iter()
                .position(|&id| id == node)
                .expect("interior path nodes are segment vertices");
            let v = vertices[idx];
            if v.from != START_SAMPLE && chosen.is_empty() {
                chosen.push(v.from);
            }
            chosen.push(v.to);
        }
        debug_assert!(!chosen.is_empty());
        // `chosen` is ordered right-to-left (increasing front index =
        // decreasing x ... front index increases leftward). Convert to
        // ascending-x knots.
        let mut knots: Vec<Point> = chosen.iter().map(|&i| front[i]).collect();
        knots.reverse();

        RightRegion {
            plateau: apex.y,
            knots,
            tail: h_start,
            fit_error: path.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// The paper's Fig. 6 worked example: Pareto samples A(10,1), B(8,2),
    /// C(6,3), D(4,4), E(2,5) plus the BD edge whose weight is the squared
    /// overestimation of C.
    fn paper_front() -> Vec<Point> {
        pts(&[(10.0, 1.0), (8.0, 2.0), (6.0, 3.0), (4.0, 4.0), (2.0, 5.0)])
    }

    #[test]
    fn segment_error_matches_paper_bd_example() {
        // Paper: the BD line overestimates C "with a squared error of 11".
        // With the paper's plot coordinates that value depends on the exact
        // sample heights; with A..E as placed here, line B(8,2)-D(4,4) at
        // C.x = 6 gives 3.0 => error (3-3)^2 = 0. Use a C that sits below:
        let front = pts(&[(8.0, 2.0), (6.0, 2.5), (4.0, 4.0)]);
        // line from (8,2) to (4,4) at x=6 -> 3.0; error (3.0-2.5)^2 = 0.25
        let err = reference::segment_error(&front, 0, 2).unwrap();
        assert!((err - 0.25).abs() < 1e-12);
        // The closed-form prefix-sum error agrees.
        let sums = PrefixSums::new(&front);
        assert!((chord_error(&front, &sums, 0, 2, false) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn segment_below_a_sample_is_invalid() {
        let front = pts(&[(8.0, 2.0), (6.0, 3.5), (4.0, 4.0)]);
        // line (8,2)-(4,4) at x=6 -> 3.0 < 3.5
        assert!(reference::segment_error(&front, 0, 2).is_none());
    }

    #[test]
    fn chord_error_matches_scan_on_all_feasible_pairs() {
        let front = pts(&[
            (20.0, 0.5),
            (12.0, 1.2),
            (9.0, 2.8),
            (6.0, 3.1),
            (4.0, 4.5),
            (2.0, 6.0),
        ]);
        let sums = PrefixSums::new(&front);
        for a in 0..front.len() {
            for b in (a + 1)..front.len() {
                if let Some(scan) = reference::segment_error(&front, a, b) {
                    let closed = chord_error(&front, &sums, a, b, false);
                    assert!(
                        (closed - scan).abs() <= 1e-9 * (1.0 + scan),
                        "chord ({a},{b}): closed-form {closed} vs scan {scan}"
                    );
                }
            }
        }
    }

    #[test]
    fn patched_prefix_sums_are_bit_identical_to_fresh() {
        let mut front = pts(&[(20.0, 0.5), (12.0, 1.2), (9.0, 2.8), (4.0, 4.5), (2.0, 6.0)]);
        let mut sums = PrefixSums::new(&front);
        // Insert a point mid-front (the streaming-front maintenance
        // pattern) and patch from the insertion index.
        front.insert(3, Point::new(6.0, 3.1));
        sums.patch(&front, 3);
        let fresh = PrefixSums::new(&front);
        assert_eq!(sums.len(), fresh.len());
        for i in 0..=front.len() {
            assert_eq!(sums.x[i].to_bits(), fresh.x[i].to_bits());
            assert_eq!(sums.xx[i].to_bits(), fresh.xx[i].to_bits());
            assert_eq!(sums.y[i].to_bits(), fresh.y[i].to_bits());
            assert_eq!(sums.yy[i].to_bits(), fresh.yy[i].to_bits());
            assert_eq!(sums.xy[i].to_bits(), fresh.xy[i].to_bits());
        }
        // And a fit through the patched sums equals the from-scratch fit.
        let a = fit_right_front_with(&front, &sums, None);
        let b = fit_right_front(&front, None);
        assert_eq!(a, b);
    }

    #[test]
    fn collinear_front_fits_exactly_with_zero_error() {
        let front = pts(&[(8.0, 1.0), (6.0, 2.0), (4.0, 3.0), (2.0, 4.0)]);
        let out = fit_right_front(&front, None);
        assert!(out.fit_error < 1e-12);
        for q in &front {
            assert!(ge_approx(out.eval(q.x), q.y));
            assert!(out.eval(q.x) <= q.y + 1e-9);
        }
    }

    #[test]
    fn fit_lies_on_or_above_all_front_samples() {
        let front = paper_front();
        let out = fit_right_front(&front, None);
        for q in &front {
            assert!(
                ge_approx(out.eval(q.x), q.y),
                "fit({}) = {} below {}",
                q.x,
                out.eval(q.x),
                q.y
            );
        }
    }

    #[test]
    fn plateau_holds_at_apex_and_beyond_left_knot() {
        let front = paper_front();
        let out = fit_right_front(&front, None);
        // Between apex x=2 and the first knot the fit is the apex height.
        assert_eq!(out.eval(2.0), 5.0);
    }

    #[test]
    fn tail_uses_start_height_when_infinite_samples_exist() {
        let front = paper_front();
        let out = fit_right_front(&front, Some(1.5));
        assert_eq!(out.eval(f64::INFINITY), 1.5);
        assert_eq!(out.eval(1e12), 1.5);
    }

    #[test]
    fn dummy_start_uses_rightmost_front_height() {
        let front = paper_front();
        let out = fit_right_front(&front, None);
        assert_eq!(out.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn nan_intensity_evaluates_to_nan() {
        // Regression: a NaN intensity used to fall through both boundary
        // comparisons into `piecewise_eval` and return an arbitrary
        // interpolation between the first knots.
        let out = fit_right_front(&paper_front(), None);
        assert!(out.eval(f64::NAN).is_nan());
        // The degenerate constant region propagates NaN too.
        let constant = RightRegion::constant(3.0);
        assert!(constant.eval(f64::NAN).is_nan());
        assert_eq!(constant.eval(1.0), 3.0);
    }

    #[test]
    fn eval_boundary_at_exactly_first_and_last_knot() {
        // `x == knots[0].x` belongs to the knot span, not the plateau;
        // `x == knots[last].x` belongs to the knot span, not the tail.
        // Distinct plateau/tail values make any misclassification visible.
        let region = RightRegion {
            plateau: 9.0,
            knots: vec![Point::new(4.0, 5.0), Point::new(8.0, 2.0)],
            tail: 0.5,
            fit_error: 0.0,
        };
        assert_eq!(region.eval(4.0), 5.0, "first knot is part of the span");
        assert_eq!(region.eval(8.0), 2.0, "last knot is part of the span");
        // Half-open neighbours on either side.
        assert_eq!(region.eval(4.0 - 1e-9), 9.0);
        assert_eq!(region.eval(8.0 + 1e-9), 0.5);
        // Interior interpolation unchanged.
        assert!((region.eval(6.0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_front_is_a_plateau() {
        let front = pts(&[(3.0, 7.0)]);
        let out = fit_right_front(&front, None);
        assert_eq!(out.eval(3.0), 7.0);
        assert_eq!(out.eval(100.0), 7.0);
    }

    #[test]
    fn single_sample_front_with_infinite_tail() {
        let front = pts(&[(3.0, 7.0)]);
        let out = fit_right_front(&front, Some(2.0));
        assert_eq!(out.eval(3.0), 7.0);
        assert_eq!(out.eval(f64::INFINITY), 2.0);
    }

    #[test]
    fn concavity_holds_on_chosen_knots() {
        let front = pts(&[
            (20.0, 0.5),
            (12.0, 1.2),
            (9.0, 2.8),
            (6.0, 3.1),
            (4.0, 4.5),
            (2.0, 6.0),
        ]);
        let out = fit_right_front(&front, None);
        let knots = out.knots();
        let slopes: Vec<f64> = knots.windows(2).map(|w| w[0].slope_to(&w[1])).collect();
        // Ascending x => slopes must be non-increasing in steepness going
        // right, i.e. increasing (toward 0) with x: concave-up.
        for w in slopes.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "right-region knots must be concave-up: slopes {slopes:?}"
            );
        }
        for s in &slopes {
            assert!(*s <= 1e-9, "right-region segments must be decreasing");
        }
    }

    #[test]
    fn low_start_height_still_finds_a_path() {
        // Start height below every front sample: connection forced at the
        // rightmost front sample.
        let front = paper_front();
        let out = fit_right_front(&front, Some(0.1));
        assert_eq!(out.tail(), 0.1);
        assert_eq!(out.eval(10.0), 1.0);
    }

    #[test]
    fn high_start_height_may_skip_front_samples() {
        // Start height above everything: the fit may connect anywhere; the
        // error-minimizing path still covers all samples.
        let front = paper_front();
        let out = fit_right_front(&front, Some(10.0));
        for q in &front {
            assert!(ge_approx(out.eval(q.x), q.y));
        }
        assert_eq!(out.eval(f64::INFINITY), 10.0);
    }

    #[test]
    fn near_duplicate_intensity_front_is_handled_as_a_vertical_stack() {
        // Regression for the degenerate-dx guard: these intensities differ
        // by ~1e-11 relative — far above f64::MIN_POSITIVE (so the old
        // absolute guard never fired, producing ~1e12-magnitude slopes and
        // catastrophically cancelled interpolation) but well inside the
        // EPS-relative coincidence band.
        let x0 = 10.0;
        let front = pts(&[(x0 + 2e-10, 1.0), (x0 + 1e-10, 5.0), (x0, 6.0), (4.0, 8.0)]);
        let sums = PrefixSums::new(&front);
        // The stacked chord (0, 2) is treated as a horizontal at max(y):
        // error (6 - 5)^2 = 1 against the interior sample, in both the
        // reference scan and the closed form.
        assert!(approx_coincident_x(front[0].x, front[2].x));
        let scan = reference::segment_error(&front, 0, 2).expect("vertical stack is feasible");
        assert!((scan - 1.0).abs() < 1e-9);
        let closed = chord_error(&front, &sums, 0, 2, true);
        assert!((closed - 1.0).abs() < 1e-9);
        // The full fit stays finite, covers every sample, and matches the
        // reference path cost.
        let out = fit_right_front(&front, None);
        let expected = reference::fit_right(&front, None);
        assert!(out.fit_error.is_finite());
        for q in &front {
            assert!(
                ge_approx(out.eval(q.x), q.y),
                "fit({}) = {} below {}",
                q.x,
                out.eval(q.x),
                q.y
            );
        }
        assert!(
            (out.fit_error - expected.fit_error).abs() <= 1e-9 * (1.0 + expected.fit_error),
            "new cost {} vs reference {}",
            out.fit_error,
            expected.fit_error
        );
        for w in out.knots.windows(2) {
            assert!(w[1].x > w[0].x, "knots must stay strictly increasing");
        }
    }

    #[test]
    fn two_point_front_picks_the_direct_segment() {
        let front = pts(&[(8.0, 2.0), (4.0, 5.0)]);
        let out = fit_right_front(&front, None);
        let expected = reference::fit_right(&front, None);
        assert_eq!(out.knots(), expected.knots());
        assert!((out.fit_error - expected.fit_error).abs() < 1e-12);
    }

    /// Strictly decreasing-x / increasing-y fronts of up to 200 samples,
    /// built from positive step increments (uniform random points would
    /// yield only O(log n)-sized Pareto fronts), plus an optional start
    /// height spanning below/within/above the front heights.
    fn front_and_start() -> impl Strategy<Value = (Vec<Point>, Option<f64>)> {
        (
            prop::collection::vec((0.05f64..1.0, 0.02f64..0.5), 1..200),
            any::<bool>(),
            0.0f64..30.0,
        )
            .prop_map(|(steps, has_start, h)| {
                let mut x = 1.0 + steps.iter().map(|s| s.0).sum::<f64>();
                let mut y = 0.5;
                let mut front = Vec::with_capacity(steps.len());
                for (dx, dy) in steps {
                    front.push(Point::new(x, y));
                    x -= dx;
                    y += dy;
                }
                (front, has_start.then_some(h))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole equivalence claim: on random fronts the O(k²) fit
        /// selects the same knots as the O(k³) graph reference, or a path
        /// of equal total cost within 1e-9 (relative) — fit costs are sums
        /// of squared errors computed by two different summation orders, so
        /// bitwise equality is not required, only equal-cost optimality.
        #[test]
        fn new_fit_matches_reference_on_random_fronts(
            (front, start) in front_and_start()
        ) {
            let fast = fit_right_front(&front, start);
            let slow = reference::fit_right(&front, start);
            prop_assert_eq!(fast.plateau(), slow.plateau());
            prop_assert_eq!(fast.tail(), slow.tail());
            let cost_tol = 1e-9 * (1.0 + slow.fit_error().abs());
            if fast.knots() != slow.knots() {
                // Different optimal paths are only acceptable at equal cost.
                prop_assert!(
                    (fast.fit_error() - slow.fit_error()).abs() <= cost_tol,
                    "knots differ with cost gap: new {} vs reference {}",
                    fast.fit_error(),
                    slow.fit_error()
                );
            } else {
                prop_assert!(
                    (fast.fit_error() - slow.fit_error()).abs() <= cost_tol,
                    "same knots, different cost: new {} vs reference {}",
                    fast.fit_error(),
                    slow.fit_error()
                );
            }
            // And the fast fit must itself be a valid cover of the front.
            for q in &front {
                prop_assert!(
                    ge_approx(fast.eval(q.x), q.y),
                    "fit({}) = {} below {}", q.x, fast.eval(q.x), q.y
                );
            }
        }
    }
}
