//! Chunked, branch-thin batch-estimate kernels.
//!
//! [`estimate_into`] is the implementation behind
//! [`PiecewiseRoofline::estimate_soa`](super::PiecewiseRoofline::estimate_soa):
//! intensities are processed in fixed-width chunks. Production-shaped
//! models (strictly increasing knots, modest knot counts) run every
//! chunk through one region-compaction kernel ([`eval_compacted`]):
//! a branch-free pass writes the constant regions and compacts the
//! interpolating lanes into per-region index lists, whose counts also
//! reveal pure single-region chunks and send them to tight fill or
//! interpolation loops the compiler can autovectorize (or, behind the
//! `simd` feature, explicit SSE2 loops). Degenerate or adversarial
//! models instead classify each chunk with a min/max sweep and fall
//! back to the exact per-lane branch chain of the scalar path for
//! mixed chunks.
//!
//! # Bit-identity contract
//!
//! Every output is bit-identical to the scalar
//! [`estimate`](super::PiecewiseRoofline::estimate) on the same input —
//! including NaN propagation and region-boundary precedence. The fast
//! paths earn this by construction, not by tolerance:
//!
//! * Fill paths only run when *every* lane classifies into one constant
//!   region (`0.0`, plateau, tail, NaN) — the same constant the scalar
//!   branch chain would select lane by lane.
//! * The interpolation path only runs when every lane lands strictly
//!   inside one knot segment, and it evaluates the *same expression in
//!   the same operation order* as [`geometry::piecewise_eval`]:
//!   `a.y + ((x - a.x) * (b.y - a.y)) / (b.x - a.x)`. IEEE-754 basic
//!   operations are exactly rounded and deterministic, so identical
//!   per-lane operation sequences give identical bits. No slope is
//!   hoisted (`(x-a.x) * dy/dx` would reassociate) and no FMA contraction
//!   is used (an FMA rounds once where `mul` + `add` round twice, so it
//!   is *not* bit-identical; `rustc` never contracts without explicit
//!   intrinsics, and this module never asks for them).
//! * Lanes that could hit `piecewise_eval`'s first/last-knot early
//!   returns (`x` at or beyond an end knot) or a duplicate-`x` segment
//!   are excluded from the interpolation fast path and take the scalar
//!   chain instead.
//!
//! The contract is pinned by the `estimate_soa_matches_per_sample_*`
//! tests in [`super`] and the chunk-width/NaN proptests in
//! `tests/properties.rs`.

use crate::geometry::{self, Point};

use super::RightRegion;

/// Default chunk width: 64 lanes (one 512-byte stripe of `f64`s) keeps
/// the classification pass in registers and amortizes its cost.
pub(super) const DEFAULT_WIDTH: usize = 64;

/// Region-class bits for the per-chunk mask.
const B_ZERO: u8 = 1 << 0; // x <= 0.0            -> 0.0
const B_LEFT: u8 = 1 << 1; // 0 < x < apex.x      -> piecewise_eval(left)
const B_PLATEAU: u8 = 1 << 2; // apex.x <= x < first -> right.plateau
const B_SPAN: u8 = 1 << 3; // first <= x <= last   -> piecewise_eval(knots)
const B_TAIL: u8 = 1 << 4; // x > last             -> right.tail
const B_NAN: u8 = 1 << 5; // NaN                  -> NaN

/// Estimates every intensity in `xs`, appending to `out`, for a
/// non-constant roofline shape. `width` is the chunk width (tests sweep
/// it; production uses [`DEFAULT_WIDTH`]).
pub(super) fn estimate_into(
    left: &[Point],
    right: &RightRegion,
    xs: &[f64],
    out: &mut Vec<f64>,
    width: usize,
) {
    let apex = *left.last().expect("hull is non-empty");
    let width = width.max(1);
    let left_strict = strictly_increasing(left);
    let right_strict = strictly_increasing(&right.knots);
    if right.knots.is_empty() {
        // Degenerate right region: plateau/span/tail all collapse to the
        // tail constant, so the class boundaries use the apex on both
        // sides (plateau becomes unreachable, span is `x == apex.x`, and
        // tail covers everything above it).
        for chunk in xs.chunks(width) {
            let mask = classify(chunk, apex.x, apex.x, apex.x);
            match mask {
                B_ZERO => fill(out, 0.0, chunk.len()),
                B_LEFT => eval_left(left, apex.x, chunk, out, left_strict),
                B_PLATEAU | B_SPAN | B_TAIL => fill(out, right.tail, chunk.len()),
                B_NAN => fill(out, f64::NAN, chunk.len()),
                _ => {
                    for &x in chunk {
                        out.push(if x <= 0.0 {
                            0.0
                        } else if x < apex.x {
                            eval_one(left, x, left_strict)
                        } else if x.is_nan() {
                            f64::NAN
                        } else {
                            right.tail
                        });
                    }
                }
            }
        }
        return;
    }
    let first = right.knots[0];
    let last = right.knots[right.knots.len() - 1];
    if left_strict && right_strict && left.len() <= SCAN_KNOTS && right.knots.len() <= SCAN_KNOTS {
        // Production-shaped models (strict knots, modest counts) skip
        // the classification pre-pass entirely: the compaction kernel
        // is bit-correct for every chunk, and it rediscovers pure
        // chunks from its own lane counts, so a separate classify sweep
        // would be pure overhead on the mixed chunks that dominate
        // shuffled inputs.
        for chunk in xs.chunks(width) {
            eval_compacted(left, right, apex, chunk, out);
        }
        return;
    }
    for chunk in xs.chunks(width) {
        let mask = classify(chunk, apex.x, first.x, last.x);
        match mask {
            B_ZERO => fill(out, 0.0, chunk.len()),
            B_LEFT => eval_left(left, apex.x, chunk, out, left_strict),
            B_PLATEAU => fill(out, right.plateau, chunk.len()),
            B_SPAN => eval_segmented(&right.knots, chunk, out, right_strict),
            B_TAIL => fill(out, right.tail, chunk.len()),
            B_NAN => fill(out, f64::NAN, chunk.len()),
            _ => {
                // Mixed chunk: the exact scalar branch chain, lane by lane.
                for &x in chunk {
                    out.push(if x <= 0.0 {
                        0.0
                    } else if x < apex.x {
                        eval_one(left, x, left_strict)
                    } else if x.is_nan() {
                        f64::NAN
                    } else if x < first.x {
                        right.plateau
                    } else if x > last.x {
                        right.tail
                    } else {
                        eval_one(&right.knots, x, right_strict)
                    });
                }
            }
        }
    }
}

/// Chunk evaluation by region compaction — the single dispatch for
/// strict, modest-sized knot arrays (the caller checks that). Correct
/// for *every* chunk composition; no classification pre-pass needed.
///
/// Randomly ordered intensities almost never produce single-region
/// chunks, so mixed chunks are the hot path for unsorted batches. Per
/// 64-lane sub-block, one branch-free pass writes the constant regions
/// (zero / plateau / tail) and compacts the lane indices that need a
/// real interpolation into two small lists (left hull, right span).
/// The compaction increments are `usize::from(bool)` adds, so the pass
/// has no data-dependent branches; the per-region loops that follow
/// then run the [`eval_knots_strict`] search over one fixed knot array
/// each, with perfectly predictable control flow. This is what beats
/// the scalar chain on mixed chunks: the ~50/50 apex split that
/// mispredicts in a branch chain becomes two dense loops.
///
/// The lane counts double as a free chunk classification: a sub-block
/// whose every lane joined one list is a pure-region chunk, and those
/// dispatch to [`eval_segmented`], whose single-segment vector loop is
/// what makes sorted batches fast. Both-lists-empty means every lane
/// kept its constant. So the pure-chunk fast paths survive without any
/// separate classify sweep.
///
/// Bit-identity per lane, mirroring the scalar chain's precedence:
/// a lane joins the left list on exactly the scalar `x > 0 && x <
/// apex.x` test, and the right list on the negation of every earlier
/// branch in the chain (`!(x <= 0) & !(x < apex.x) & !(x < first.x) &
/// !(x > last.x)`). A NaN lane fails every ordered comparison, so all
/// four negations hold and it lands in the right list, where the
/// interpolation propagates it with payload intact — the same
/// first-segment fall-through the scalar chain takes. The constant
/// pass writes plateau/tail into lanes the lists later overwrite; only
/// uncontested lanes keep those constants.
fn eval_compacted(
    left: &[Point],
    right: &RightRegion,
    apex: Point,
    chunk: &[f64],
    out: &mut Vec<f64>,
) {
    let rk: &[Point] = &right.knots;
    let (first, last) = (rk[0], rk[rk.len() - 1]);
    let mut idx_l = [0u32; 64];
    let mut idx_r = [0u32; 64];
    let mut buf = [0.0f64; 64];
    for sub in chunk.chunks(64) {
        let (mut n_l, mut n_r) = (0usize, 0usize);
        for (j, &x) in sub.iter().enumerate() {
            // `&` instead of `&&`: no short-circuit branch on a
            // data-dependent predicate. The negated comparisons are
            // NaN-aware on purpose (`!(x <= 0.0)` is true for NaN where
            // `x > 0.0` is not), keeping NaN lanes out of both compacted
            // index lists so the placeholder write propagates them.
            let in_left = (x > 0.0) & (x < apex.x);
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let in_right = !(x <= 0.0) & !(x < apex.x) & !(x < first.x) & !(x > last.x);
            idx_l[n_l] = j as u32;
            n_l += usize::from(in_left);
            idx_r[n_r] = j as u32;
            n_r += usize::from(in_right);
            // Constant regions inline; interpolated lanes get a
            // placeholder the region loops overwrite. The select is a
            // pair of cmovs, and writing to the stack buffer instead of
            // pushing skips a capacity check per lane.
            buf[j] = if x <= 0.0 {
                0.0
            } else if x < first.x {
                right.plateau
            } else {
                right.tail
            };
        }
        if n_l == sub.len() {
            eval_segmented(left, sub, out, true);
            continue;
        }
        if n_r == sub.len() {
            eval_segmented(rk, sub, out, true);
            continue;
        }
        for &j in &idx_l[..n_l] {
            buf[j as usize] = eval_knots_strict(left, sub[j as usize]);
        }
        for &j in &idx_r[..n_r] {
            buf[j as usize] = eval_knots_strict(rk, sub[j as usize]);
        }
        out.extend_from_slice(&buf[..sub.len()]);
    }
}

/// Whether the knot `x`s strictly increase — the precondition for the
/// branchless [`eval_knots_strict`] search (no duplicate-`x` segments, at
/// least one real segment). Computed once per batch, not per lane.
#[inline]
fn strictly_increasing(knots: &[Point]) -> bool {
    knots.len() >= 2 && knots.windows(2).all(|w| w[0].x < w[1].x)
}

/// One lane of piecewise evaluation: the branchless search when the knots
/// qualify, the scalar reference otherwise.
#[inline]
fn eval_one(knots: &[Point], x: f64, strict: bool) -> f64 {
    if strict {
        eval_knots_strict(knots, x)
    } else {
        geometry::piecewise_eval(knots, x)
    }
}

/// [`geometry::piecewise_eval`] for strictly-increasing knots, with the
/// branchy binary search replaced by a conditional-move search whose
/// trip count is uniform across lanes (the interval halves every
/// iteration no matter which side wins), so independent lanes pipeline
/// instead of stalling on ~50%-mispredicted search branches.
///
/// Bit-identity: the search is the same algorithm as the scalar one, so
/// it lands on the same segment; the interpolation is the same expression
/// in the same operation order; and the end-knot early returns become
/// final selects on the same comparisons. Strictly-increasing `x`s rule
/// out the duplicate-`x` (`b.x == a.x`) scalar branch, and a NaN `x`
/// fails every ordered comparison on both paths, yielding the same
/// NaN-propagating interpolation over the first segment.
#[inline]
fn eval_knots_strict(knots: &[Point], x: f64) -> f64 {
    debug_assert!(strictly_increasing(knots));
    let n = knots.len();
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let le = knots[mid].x <= x;
        lo = if le { mid } else { lo };
        hi = if le { hi } else { mid };
    }
    let (a, b) = (knots[lo], knots[hi]);
    let mut y = a.y + (x - a.x) * (b.y - a.y) / (b.x - a.x);
    y = if x <= knots[0].x { knots[0].y } else { y };
    y = if x >= knots[n - 1].x {
        knots[n - 1].y
    } else {
        y
    };
    y
}

/// Chunk region classification from the chunk's min/max. A pure-class
/// mask comes back exactly when every lane falls in that class; any
/// other chunk gets a multi-bit "mixed" mask. The sweep is three
/// vectorizable lane operations (min, max, NaN-accumulate) instead of a
/// per-lane class computation — on shuffled inputs almost every chunk
/// is mixed, so the pre-pass must be as thin as possible.
///
/// `f64::min`/`max` ignore NaN operands, so the bounds describe only
/// the non-NaN lanes; the separate `nan` flag forces any NaN-carrying
/// chunk into the mixed path (whose lane handling propagates NaN the
/// way the scalar chain does), except the all-NaN chunk which keeps its
/// dedicated fill class.
#[inline]
fn classify(chunk: &[f64], apex_x: f64, first_x: f64, last_x: f64) -> u8 {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut nan = false;
    for &x in chunk {
        mn = mn.min(x);
        mx = mx.max(x);
        nan |= x.is_nan();
    }
    if nan {
        // `mn > mx` only when min/max saw no finite lane at all.
        return if mn > mx { B_NAN } else { B_NAN | B_SPAN };
    }
    if mx <= 0.0 {
        return B_ZERO;
    }
    if (mn > 0.0) & (mx < apex_x) {
        return B_LEFT;
    }
    if (mn >= apex_x) & (mx < first_x) {
        return B_PLATEAU;
    }
    if (mn >= first_x) & (mx <= last_x) {
        return B_SPAN;
    }
    if mn > last_x {
        return B_TAIL;
    }
    B_ZERO | B_LEFT
}

/// Appends `n` copies of `v`.
#[inline]
fn fill(out: &mut Vec<f64>, v: f64, n: usize) {
    out.resize(out.len() + n, v);
}

/// Left-region chunk: every lane satisfies `0 < x < apex_x`, so the outer
/// branch chain is already decided and only the hull interpolation runs.
#[inline]
fn eval_left(left: &[Point], apex_x: f64, chunk: &[f64], out: &mut Vec<f64>, strict: bool) {
    debug_assert_eq!(left.last().map(|p| p.x), Some(apex_x));
    eval_segmented(left, chunk, out, strict);
}

/// Piecewise-linear chunk evaluation: if every lane lands strictly inside
/// one segment, run the straight-line interpolation as a vector loop with
/// hoisted knot constants; otherwise evaluate lane by lane with the
/// branchless search (still skipping the outer region branches).
#[inline]
fn eval_segmented(knots: &[Point], chunk: &[f64], out: &mut Vec<f64>, strict: bool) {
    if knots.len() >= 2 {
        // min/max are exact here: no chunk lane is NaN (NaN never
        // classifies into a knot span).
        let (mut mn, mut mx) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in chunk {
            mn = mn.min(x);
            mx = mx.max(x);
        }
        // Strict interior bounds keep the end-knot early returns of
        // `piecewise_eval` (which return the knot height exactly, not the
        // interpolation formula) out of the vector path.
        if mn > knots[0].x && mx < knots[knots.len() - 1].x {
            let seg = segment_index(knots, mn);
            let (a, b) = (knots[seg], knots[seg + 1]);
            if mx < b.x && b.x != a.x {
                interpolate_segment(a, b, chunk, out);
                return;
            }
        }
    }
    if strict && knots.len() <= SCAN_KNOTS {
        eval_counted(knots, chunk, out);
    } else if strict {
        for &x in chunk {
            out.push(eval_knots_strict(knots, x));
        }
    } else {
        for &x in chunk {
            out.push(geometry::piecewise_eval(knots, x));
        }
    }
}

/// Knot-count ceiling for the counting-scan segment search: above this,
/// the `O(log k)` conditional-move search beats the `O(k)` scan.
const SCAN_KNOTS: usize = 64;

/// Multi-segment chunk evaluation by counting scan, for strictly
/// increasing knots. (A NaN lane counts zero, interpolates over the
/// first segment, and fails both end selects — the scalar NaN
/// fall-through exactly.) The segment index is
/// `#{i >= 1 : knots[i].x <= x}`, which for
/// strictly increasing `x`s equals the binary-search index — but the
/// count is data-independent straight-line code the compiler vectorizes
/// (one broadcast compare-and-accumulate sweep per knot), where any
/// search would branch or gather per lane.
///
/// Bit-identity with [`geometry::piecewise_eval`]: interior lanes get the
/// same segment and the same interpolation expression; lanes at or beyond
/// an end knot get the interpolation overwritten by the same early-return
/// constants through final selects (at `x == knots[0].x` the clamped
/// interpolation is evaluated but discarded).
fn eval_counted(knots: &[Point], chunk: &[f64], out: &mut Vec<f64>) {
    let n = knots.len();
    debug_assert!(n >= 2);
    let (first, last) = (knots[0], knots[n - 1]);
    // Fixed-width sub-blocks keep the per-lane counts in a stack array
    // regardless of the caller's chunk width.
    for sub in chunk.chunks(64) {
        let mut cnt = [0u32; 64];
        let cnt = &mut cnt[..sub.len()];
        for k in &knots[1..] {
            let kx = k.x;
            for (c, &x) in cnt.iter_mut().zip(sub) {
                *c += u32::from(kx <= x);
            }
        }
        for (&c, &x) in cnt.iter().zip(sub) {
            let lo = (c as usize).min(n - 2);
            let (a, b) = (knots[lo], knots[lo + 1]);
            let mut y = a.y + (x - a.x) * (b.y - a.y) / (b.x - a.x);
            y = if x <= first.x { first.y } else { y };
            y = if x >= last.x { last.y } else { y };
            out.push(y);
        }
    }
}

/// The binary search of [`geometry::piecewise_eval`]: the index `i` with
/// `knots[i].x <= x` and (for interior `x`) `x < knots[i+1].x`.
#[inline]
fn segment_index(knots: &[Point], x: f64) -> usize {
    let mut lo = 0;
    let mut hi = knots.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if knots[mid].x <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One-segment interpolation over a whole chunk — the expression and
/// operation order of [`geometry::piecewise_eval`]'s last line, with the
/// knot loads hoisted.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn interpolate_segment(a: Point, b: Point, chunk: &[f64], out: &mut Vec<f64>) {
    let dy = b.y - a.y;
    let dx = b.x - a.x;
    for &x in chunk {
        out.push(a.y + (x - a.x) * dy / dx);
    }
}

/// Explicit-SIMD form of the segment interpolation: two lanes per SSE2
/// vector, the same `sub -> mul -> div -> add` sequence as the scalar
/// expression. SSE2 arithmetic is IEEE-754 exactly rounded per lane, so
/// the results are bit-identical to the scalar loop (no FMA contraction —
/// `_mm_div_pd`/`_mm_mul_pd` round like their scalar counterparts).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
#[inline]
fn interpolate_segment(a: Point, b: Point, chunk: &[f64], out: &mut Vec<f64>) {
    use std::arch::x86_64::{
        _mm_add_pd, _mm_div_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_storeu_pd, _mm_sub_pd,
    };
    let dy = b.y - a.y;
    let dx = b.x - a.x;
    let start = out.len();
    out.resize(start + chunk.len(), 0.0);
    let dst = &mut out[start..];
    let pairs = chunk.len() / 2;
    // SAFETY (for the whole intrinsic block): SSE2 is baseline on
    // x86_64, loads/stores are unaligned-tolerant (`loadu`/`storeu`),
    // and every pointer stays inside `chunk`/`dst`, whose lengths match.
    unsafe {
        let va_y = _mm_set1_pd(a.y);
        let va_x = _mm_set1_pd(a.x);
        let vdy = _mm_set1_pd(dy);
        let vdx = _mm_set1_pd(dx);
        for i in 0..pairs {
            let x = _mm_loadu_pd(chunk.as_ptr().add(2 * i));
            let t = _mm_div_pd(_mm_mul_pd(_mm_sub_pd(x, va_x), vdy), vdx);
            _mm_storeu_pd(dst.as_mut_ptr().add(2 * i), _mm_add_pd(va_y, t));
        }
    }
    if chunk.len() % 2 == 1 {
        let x = chunk[chunk.len() - 1];
        dst[chunk.len() - 1] = a.y + (x - a.x) * dy / dx;
    }
}
