//! Machine identity: which processor produced a dataset or trained a
//! model.
//!
//! SPIRE's portability story is retraining per machine, which makes the
//! machine a first-class dimension of every artifact: a [`MachineSpec`]
//! names the microarchitecture, fingerprints its exact configuration
//! (FNV-1a 64 over the canonical config JSON), and carries the derived
//! peak descriptors ([`MachinePeaks`]) used by the hardware-agnostic
//! normalization of "Dissecting RISC-V Performance". The spec is threaded
//! through dataset metadata, snapshot provenance, and serve responses, so
//! a model trained on one machine can never be silently applied to
//! another machine's counters: the mismatch surfaces as a typed
//! `machine_mismatch` event (lenient) or a [`SpireError::MachineMismatch`]
//! refusal (strict).
//!
//! # Normalization math
//!
//! A hardware-agnostic (peak-normalized) sample scales the work quantity
//! by the machine's peak throughput, `W' = W / peak`, so throughput
//! becomes the dimensionless fraction of peak `P' = W'/T = P/peak`.
//! Metric deltas scale by their dimension, following the peak-scaled
//! roofline construction of "Dissecting RISC-V Performance":
//!
//! * **event counts** (retired/issued µops, per-level hits, misses,
//!   branches) are proportional to the work done, so they scale with it:
//!   `M' = M / peak`. The intensity `I = W'/M' = W/M` — work per event —
//!   is then *machine-invariant*, and the metric's roofline relates a
//!   workload property (x axis) to a machine-relative fraction of peak
//!   (y axis), which is exactly what transfers across machines;
//! * **cycle-denominated counters** (stall, activity, and occupancy
//!   cycles) keep raw deltas — cycles are already machine-neutral time —
//!   so their intensity becomes fraction-of-peak work per cycle.
//!
//! A spec with [`MachineSpec::normalized`] set tags artifacts in those
//! units; normalized models skip the machine-identity check entirely
//! (cross-machine use is their purpose).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::sample::{MetricColumn, SampleSet};
use crate::snapshot::fnv1a64;

/// Derived peak descriptors of a machine: the ceilings normalization
/// divides by and the catalog reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePeaks {
    /// Peak work throughput (work units per cycle; issue width for IPC).
    pub throughput: f64,
    /// Per-memory-level bandwidth ceilings (misses serviceable per cycle,
    /// Little's-law style: outstanding misses / latency), keyed by level
    /// name (`"l1"`, `"l2"`, `"l3"`, `"dram"`).
    pub bandwidth: BTreeMap<String, f64>,
}

/// Identity of the machine an artifact came from: a catalog name, the
/// FNV-1a 64 fingerprint of the canonical configuration JSON, and the
/// derived peaks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-meaningful machine name (catalog preset or custom file stem).
    pub name: String,
    /// FNV-1a 64 fingerprint of the canonical config JSON, lowercase hex.
    pub fingerprint: String,
    /// Derived peak descriptors.
    pub peaks: MachinePeaks,
    /// `true` when the tagged artifact is in peak-normalized
    /// (hardware-agnostic) units rather than raw counter units.
    pub normalized: bool,
}

impl MachineSpec {
    /// Short `name [fingerprint]` form for logs and event payloads.
    pub fn tag(&self) -> String {
        format!("{} [{}]", self.name, self.fingerprint)
    }

    /// Returns a copy tagged as peak-normalized.
    pub fn as_normalized(&self) -> MachineSpec {
        MachineSpec {
            normalized: true,
            ..self.clone()
        }
    }

    /// Whether two specs identify the same machine in the same units:
    /// equal fingerprints and equal normalization. Names are advisory.
    pub fn matches(&self, other: &MachineSpec) -> bool {
        self.fingerprint == other.fingerprint && self.normalized == other.normalized
    }
}

/// Fingerprints a machine's canonical configuration text (FNV-1a 64,
/// lowercase hex) — the identity compared by every mismatch check.
pub fn config_fingerprint(canonical_json: &str) -> String {
    format!("{:016x}", fnv1a64(canonical_json.as_bytes()))
}

/// Whether a counter's deltas are denominated in cycles rather than
/// event counts, inferred from the counter naming convention (stall,
/// activity, and occupancy counters all carry `cycles`, `stalls`, or
/// `activity` in their names). Cycle deltas are machine-neutral time and
/// stay raw under normalization; event counts scale with the work so
/// work-per-event intensities stay machine-invariant.
fn cycle_denominated(metric: &str) -> bool {
    metric.contains("cycles") || metric.contains("stalls") || metric.contains("activity")
}

/// Peak-normalizes one sample set (see the module docs for the math):
/// every row's work `W` — and, for event-count metrics, the metric delta
/// with it — is scaled by `1 / peaks.throughput`, putting throughput in
/// fraction-of-peak units while work-per-event intensities stay
/// machine-invariant. Times and cycle-denominated deltas are unchanged.
/// Hostile rows (NaN/infinite work) pass through scaled, as the
/// unchecked ingest paths already admit them.
pub fn normalize_set(set: &SampleSet, peaks: &MachinePeaks) -> SampleSet {
    let scale = 1.0 / peaks.throughput;
    let columns = set
        .columns()
        .iter()
        .map(|col| {
            let delta_scale = if cycle_denominated(col.metric().as_str()) {
                1.0
            } else {
                scale
            };
            MetricColumn::from_raw_columns(
                col.metric().clone(),
                col.times().to_vec(),
                col.works().iter().map(|w| w * scale).collect(),
                col.metric_deltas()
                    .iter()
                    .map(|d| d * delta_scale)
                    .collect(),
            )
            .expect("source column arrays share one length")
        })
        .collect();
    SampleSet::from_columns(columns).expect("source columns are sorted and distinct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    fn spec(name: &str, fp: &str) -> MachineSpec {
        MachineSpec {
            name: name.to_owned(),
            fingerprint: fp.to_owned(),
            peaks: MachinePeaks {
                throughput: 4.0,
                bandwidth: [("dram".to_owned(), 0.05)].into_iter().collect(),
            },
            normalized: false,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = config_fingerprint("{\"issue_width\":4}");
        let b = config_fingerprint("{\"issue_width\":4}");
        let c = config_fingerprint("{\"issue_width\":8}");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|ch| ch.is_ascii_hexdigit()));
    }

    #[test]
    fn matches_compares_fingerprint_and_normalization() {
        let a = spec("a", "00ff");
        assert!(a.matches(&spec("other-name", "00ff")));
        assert!(!a.matches(&spec("a", "00fe")));
        assert!(!a.matches(&a.as_normalized()));
        assert!(a.as_normalized().matches(&a.as_normalized()));
    }

    #[test]
    fn serde_round_trip_preserves_every_field() {
        let mut s = spec("hpc", "abcd0123abcd0123");
        s.normalized = true;
        let json = serde_json::to_string(&s).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn normalize_scales_work_and_event_counts_together() {
        let mut set = SampleSet::new();
        set.push(Sample::new("mem_load_retired.l2_hit", 2.0, 8.0, 4.0).unwrap());
        set.push(Sample::new("uops_issued.any", 1.0, 4.0, 0.0).unwrap());
        let peaks = MachinePeaks {
            throughput: 4.0,
            bandwidth: BTreeMap::new(),
        };
        let scaled = normalize_set(&set, &peaks);
        let m = scaled.column(&"mem_load_retired.l2_hit".into()).unwrap();
        assert_eq!(m.times(), &[2.0]);
        assert_eq!(m.works(), &[2.0]);
        // Event counts scale with the work, so work-per-event intensity
        // is unchanged while throughput is a fraction of peak.
        assert_eq!(m.metric_deltas(), &[1.0]);
        assert_eq!(m.throughputs(), &[1.0]);
        assert_eq!(m.intensities(), &[2.0]);
        // Infinite intensity (zero delta) survives normalization.
        let n = scaled.column(&"uops_issued.any".into()).unwrap();
        assert!(n.intensities()[0].is_infinite());
        assert_eq!(scaled.len(), set.len());
    }

    #[test]
    fn normalize_keeps_cycle_denominated_deltas_raw() {
        let mut set = SampleSet::new();
        set.push(Sample::new("cycle_activity.stalls_total", 2.0, 8.0, 6.0).unwrap());
        set.push(Sample::new("resource_stalls.any", 2.0, 8.0, 3.0).unwrap());
        set.push(Sample::new("exe_activity.1_ports_util", 2.0, 8.0, 5.0).unwrap());
        set.push(Sample::new("l1d_pend_miss.pending_cycles", 2.0, 8.0, 7.0).unwrap());
        let peaks = MachinePeaks {
            throughput: 4.0,
            bandwidth: BTreeMap::new(),
        };
        let scaled = normalize_set(&set, &peaks);
        for (metric, delta) in [
            ("cycle_activity.stalls_total", 6.0),
            ("resource_stalls.any", 3.0),
            ("exe_activity.1_ports_util", 5.0),
            ("l1d_pend_miss.pending_cycles", 7.0),
        ] {
            let col = scaled.column(&metric.into()).unwrap();
            // Cycles are machine-neutral time: deltas stay raw while the
            // work (and thus throughput/intensity) is a fraction of peak.
            assert_eq!(col.metric_deltas(), &[delta], "{metric}");
            assert_eq!(col.works(), &[2.0], "{metric}");
        }
    }
}
