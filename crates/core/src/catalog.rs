//! Metric naming and microarchitecture-area classification (paper
//! Table III).
//!
//! The paper abbreviates each performance metric (e.g. `BP.1` for
//! `br_misp_retired.all_branches`) and associates it with the closest
//! top-level TMA bottleneck category. [`MetricCatalog::table_iii`] encodes
//! that table verbatim; [`MetricCatalog::register`] extends it with
//! additional events.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sample::MetricId;

/// Top-level microarchitecture areas, matching TMA's level-1 bottleneck
/// categories (minus Retiring, which is not a bottleneck).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UarchArea {
    /// Performance lost to front-end (fetch/decode) stalls.
    FrontEnd,
    /// Performance lost to incorrect speculation.
    BadSpeculation,
    /// Performance lost to memory-related back-end stalls.
    Memory,
    /// Performance lost to non-memory back-end stalls.
    Core,
}

impl UarchArea {
    /// All areas, in TMA presentation order.
    pub const ALL: [UarchArea; 4] = [
        UarchArea::FrontEnd,
        UarchArea::BadSpeculation,
        UarchArea::Memory,
        UarchArea::Core,
    ];
}

impl fmt::Display for UarchArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UarchArea::FrontEnd => "Front-End",
            UarchArea::BadSpeculation => "Bad Speculation",
            UarchArea::Memory => "Memory",
            UarchArea::Core => "Core",
        };
        f.write_str(s)
    }
}

/// Catalog entry for one metric: abbreviation, expanded event name, and
/// closest TMA area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricInfo {
    /// Paper-style abbreviation, e.g. `"BP.1"`.
    pub abbr: String,
    /// Expanded hardware event name, e.g.
    /// `"br_misp_retired.all_branches"`.
    pub event: String,
    /// Closest top-level TMA bottleneck area.
    pub area: UarchArea,
}

/// A metric catalog: event name → abbreviation and area.
///
/// ```
/// use spire_core::catalog::{MetricCatalog, UarchArea};
///
/// let catalog = MetricCatalog::table_iii();
/// let info = catalog.lookup_event("br_misp_retired.all_branches").unwrap();
/// assert_eq!(info.abbr, "BP.1");
/// assert_eq!(info.area, UarchArea::BadSpeculation);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricCatalog {
    by_event: BTreeMap<String, MetricInfo>,
}

impl MetricCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        MetricCatalog::default()
    }

    /// The paper's Table III: 33 metrics with abbreviations and areas.
    ///
    /// `DQ.K` (`idq_uops_not_delivered.cycles_fe_was_ok`) is classified as
    /// `Core`: although its abbreviation groups it with the front-end
    /// delivery metrics, the paper's analysis reads it as "the back-end is
    /// stalling the front-end".
    pub fn table_iii() -> Self {
        use UarchArea::*;
        let entries: &[(&str, &str, UarchArea)] = &[
            (
                "FE.1",
                "frontend_retired.latency_ge_2_bubbles_ge_1",
                FrontEnd,
            ),
            (
                "FE.2",
                "frontend_retired.latency_ge_2_bubbles_ge_2",
                FrontEnd,
            ),
            (
                "FE.3",
                "frontend_retired.latency_ge_2_bubbles_ge_3",
                FrontEnd,
            ),
            ("DB.1", "idq.dsb_cycles", FrontEnd),
            ("DB.2", "idq.dsb_uops", FrontEnd),
            ("DB.3", "frontend_retired.dsb_miss", FrontEnd),
            ("DB.4", "idq.all_dsb_cycles_any_uops", FrontEnd),
            ("MS.1", "idq.ms_switches", FrontEnd),
            ("MS.2", "idq.ms_dsb_cycles", FrontEnd),
            (
                "DQ.1",
                "idq_uops_not_delivered.cycles_le_1_uop_deliv.core",
                FrontEnd,
            ),
            (
                "DQ.2",
                "idq_uops_not_delivered.cycles_le_2_uop_deliv.core",
                FrontEnd,
            ),
            (
                "DQ.3",
                "idq_uops_not_delivered.cycles_le_3_uop_deliv.core",
                FrontEnd,
            ),
            ("DQ.C", "idq_uops_not_delivered.core", FrontEnd),
            ("DQ.K", "idq_uops_not_delivered.cycles_fe_was_ok", Core),
            ("BP.1", "br_misp_retired.all_branches", BadSpeculation),
            ("BP.2", "int_misc.recovery_cycles", BadSpeculation),
            ("BP.3", "int_misc.recovery_cycles_any", BadSpeculation),
            ("M", "cycle_activity.cycles_mem_any", Memory),
            ("L1.1", "cycle_activity.cycles_l1d_miss", Memory),
            ("L1.2", "cycle_activity.stalls_l1d_miss", Memory),
            ("L1.3", "l1d_pend_miss.pending_cycles", Memory),
            ("L3", "longest_lat_cache.miss", Memory),
            ("LK", "mem_inst_retired.lock_loads", Memory),
            ("CS.1", "cycle_activity.stalls_total", Core),
            ("CS.2", "uops_retired.stall_cycles", Core),
            ("CS.3", "uops_issued.stall_cycles", Core),
            ("CS.4", "uops_executed.stall_cycles", Core),
            ("CS.5", "resource_stalls.any", Core),
            ("CS.6", "exe_activity.exe_bound_0_ports", Core),
            ("C1.1", "uops_executed.core_cycles_ge_1", Core),
            ("C1.2", "uops_executed.cycles_ge_1_uop_exec", Core),
            ("C1.3", "exe_activity.1_ports_util", Core),
            ("VW", "uops_issued.vector_width_mismatch", Core),
        ];
        let mut catalog = MetricCatalog::new();
        for (abbr, event, area) in entries {
            catalog.register(*abbr, *event, *area);
        }
        catalog
    }

    /// Registers (or replaces) a metric.
    pub fn register(&mut self, abbr: impl Into<String>, event: impl Into<String>, area: UarchArea) {
        let event = event.into();
        self.by_event.insert(
            event.clone(),
            MetricInfo {
                abbr: abbr.into(),
                event,
                area,
            },
        );
    }

    /// Looks up a metric by expanded event name.
    pub fn lookup_event(&self, event: &str) -> Option<&MetricInfo> {
        self.by_event.get(event)
    }

    /// Looks up a metric by [`MetricId`].
    pub fn lookup(&self, metric: &MetricId) -> Option<&MetricInfo> {
        self.by_event.get(metric.as_str())
    }

    /// Looks up a metric by abbreviation (linear scan; the catalog is
    /// small).
    pub fn lookup_abbr(&self, abbr: &str) -> Option<&MetricInfo> {
        self.by_event.values().find(|i| i.abbr == abbr)
    }

    /// The area a metric belongs to, if cataloged.
    pub fn area_of(&self, metric: &MetricId) -> Option<UarchArea> {
        self.lookup(metric).map(|i| i.area)
    }

    /// Iterates over all entries, ordered by event name.
    pub fn iter(&self) -> impl Iterator<Item = &MetricInfo> {
        self.by_event.values()
    }

    /// All entries for one area, ordered by abbreviation.
    pub fn in_area(&self, area: UarchArea) -> Vec<&MetricInfo> {
        let mut v: Vec<_> = self.by_event.values().filter(|i| i.area == area).collect();
        v.sort_by(|a, b| a.abbr.cmp(&b.abbr));
        v
    }

    /// Number of cataloged metrics.
    pub fn len(&self) -> usize {
        self.by_event.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.by_event.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_has_all_33_entries() {
        // 33 rows in the paper's Table III (counting every abbreviation).
        assert_eq!(MetricCatalog::table_iii().len(), 33);
    }

    #[test]
    fn lookup_by_event_abbr_and_metric_id_agree() {
        let c = MetricCatalog::table_iii();
        let by_event = c.lookup_event("idq.ms_switches").unwrap();
        let by_abbr = c.lookup_abbr("MS.1").unwrap();
        assert_eq!(by_event, by_abbr);
        let id = MetricId::new("idq.ms_switches");
        assert_eq!(c.lookup(&id).unwrap(), by_event);
    }

    #[test]
    fn areas_match_the_paper() {
        let c = MetricCatalog::table_iii();
        assert_eq!(c.lookup_abbr("FE.1").unwrap().area, UarchArea::FrontEnd);
        assert_eq!(
            c.lookup_abbr("BP.2").unwrap().area,
            UarchArea::BadSpeculation
        );
        assert_eq!(c.lookup_abbr("L3").unwrap().area, UarchArea::Memory);
        assert_eq!(c.lookup_abbr("VW").unwrap().area, UarchArea::Core);
        // DQ.K is the back-end-stalling-the-front-end signal.
        assert_eq!(c.lookup_abbr("DQ.K").unwrap().area, UarchArea::Core);
    }

    #[test]
    fn in_area_is_sorted_by_abbreviation() {
        let c = MetricCatalog::table_iii();
        let mem = c.in_area(UarchArea::Memory);
        let abbrs: Vec<&str> = mem.iter().map(|i| i.abbr.as_str()).collect();
        assert_eq!(abbrs, ["L1.1", "L1.2", "L1.3", "L3", "LK", "M"]);
    }

    #[test]
    fn register_replaces_existing_event() {
        let mut c = MetricCatalog::new();
        c.register("A", "evt", UarchArea::Core);
        c.register("B", "evt", UarchArea::Memory);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup_event("evt").unwrap().abbr, "B");
    }

    #[test]
    fn area_display_names() {
        assert_eq!(UarchArea::FrontEnd.to_string(), "Front-End");
        assert_eq!(UarchArea::BadSpeculation.to_string(), "Bad Speculation");
    }
}
