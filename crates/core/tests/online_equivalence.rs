//! Property test pinning the online-training equivalence guarantee
//! (ISSUE satellite): any interleaving of pushed batches, committed at
//! any boundaries, converges to the *bit-identical* model, report, and
//! notices of one batch retrain over the concatenated samples — at both
//! `threads = 1` (serial) and `threads = 0` (auto fan-out).
//!
//! Equality here is structural (`PartialEq` over every fitted segment),
//! not a tolerance: the maintenance layer only skips work it can prove is
//! an exact no-op, and replays everything else through the same fitting
//! code paths as the batch trainer.

use proptest::prelude::*;
use spire_core::{OnlineTrainer, Sample, SampleSet, SpireModel, TrainConfig, TrainStrictness};

/// Strategy: one raw `(T, W, M)` triple; `M` is zero ~10% of the time to
/// exercise the infinite-intensity (constant-fit) paths.
fn raw_sample() -> impl Strategy<Value = (f64, f64, f64)> {
    (
        0.1f64..100.0,
        0.0f64..1000.0,
        prop_oneof![
            1 => Just(0.0f64),
            9 => 0.01f64..100.0,
        ],
    )
}

/// Strategy: an interleaved multi-metric stream, pre-split into batches.
/// Batch sizes are part of the random input, so commit boundaries land at
/// arbitrary points of the stream — including empty-batch-adjacent ones.
fn batched_stream(
    metrics: usize,
    max_rows: usize,
    max_batches: usize,
) -> impl Strategy<Value = Vec<Vec<Sample>>> {
    let names: Vec<String> = (0..metrics).map(|i| format!("metric_{i}")).collect();
    let rows = prop::collection::vec((0..metrics, raw_sample()), metrics..max_rows);
    (rows, 1..=max_batches).prop_map(move |(rows, batches)| {
        let mut out = vec![Vec::new(); batches];
        for (k, (i, (t, w, m))) in rows.into_iter().enumerate() {
            out[k % batches]
                .push(Sample::new(names[i].as_str(), t, w, m).expect("valid by construction"));
        }
        out
    })
}

/// Streams the batches through an [`OnlineTrainer`] with a commit after
/// every batch, and asserts the final state matches one batch retrain
/// over the concatenation.
fn assert_converges(batches: &[Vec<Sample>], threads: usize) {
    let config = TrainConfig {
        threads,
        ..TrainConfig::default()
    };
    let mut trainer =
        OnlineTrainer::new(config.clone(), TrainStrictness::Lenient).expect("valid config");
    let mut concatenated = SampleSet::new();
    let mut last = None;
    for rows in batches {
        let batch: SampleSet = rows.iter().cloned().collect();
        concatenated.extend(batch.iter());
        trainer.push_batch(&batch);
        last = Some(trainer.commit().expect("lenient commit"));
    }
    let expected = SpireModel::train_with_report(&concatenated, config, TrainStrictness::Lenient)
        .expect("batch retrain");
    let last = last.expect("at least one batch");
    assert_eq!(
        trainer.model().expect("committed model"),
        &expected.model,
        "incremental model diverged from batch retrain"
    );
    assert_eq!(last.report, expected.report, "train report diverged");
    assert_eq!(last.fit_notices, expected.fit_notices, "notices diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any batch interleaving converges to the batch-retrain model,
    /// bit-identically, with the serial executor.
    #[test]
    fn interleavings_converge_serial(batches in batched_stream(4, 120, 6)) {
        assert_converges(&batches, 1);
    }

    /// The same guarantee with `threads = 0` (auto fan-out): the executor
    /// choice must not perturb the result.
    #[test]
    fn interleavings_converge_auto_threads(batches in batched_stream(4, 120, 6)) {
        assert_converges(&batches, 0);
    }
}
