//! Property-based tests for the SPIRE core invariants.
//!
//! These exercise the fitting algorithms and ensemble arithmetic on random
//! inputs: the invariants here are the paper's correctness conditions
//! (upper-bound fits, monotone regions, min-ensemble semantics).

use proptest::prelude::*;
use spire_core::geometry::{pareto_front, piecewise_eval, upper_hull_from_origin, Point};
use spire_core::graph::DiGraph;
use spire_core::{
    EnsembleAggregation, FitOptions, MergeStrategy, PiecewiseRoofline, RightFitMode, Sample,
    SampleSet, SpireModel, TrainConfig,
};

/// Strategy: one raw sample triple `(T, W, M)`. `M` is zero ~10% of the
/// time to exercise infinite-intensity handling.
fn raw_sample() -> impl Strategy<Value = (f64, f64, f64)> {
    (
        0.1f64..100.0,
        0.0f64..1000.0,
        prop_oneof![
            1 => Just(0.0f64),
            9 => 0.01f64..100.0,
        ],
    )
}

fn samples(metric: &'static str, n: usize) -> impl Strategy<Value = Vec<Sample>> {
    prop::collection::vec(raw_sample(), 1..n).prop_map(move |v| {
        v.into_iter()
            .map(|(t, w, m)| Sample::new(metric, t, w, m).expect("valid by construction"))
            .collect()
    })
}

/// Strategy: an interleaved multi-metric corpus — up to `per_metric`
/// samples for each of `metrics` metric names, in arbitrary row order.
fn corpus(metrics: usize, per_metric: usize) -> impl Strategy<Value = Vec<Sample>> {
    let names: Vec<String> = (0..metrics).map(|i| format!("metric_{i}")).collect();
    prop::collection::vec((0..metrics, raw_sample()), metrics..metrics * per_metric).prop_map(
        move |v| {
            v.into_iter()
                .map(|(i, (t, w, m))| {
                    Sample::new(names[i].as_str(), t, w, m).expect("valid by construction")
                })
                .collect()
        },
    )
}

/// Tolerance used when checking the upper-bound property; fits only need
/// to hold up to floating-point round-off.
fn tol(v: f64) -> f64 {
    1e-6 * (1.0 + v.abs())
}

/// Strategy: an f64 that may be finite, NaN, or an infinity — the full
/// range a long-running service can see in hostile request payloads.
fn wild_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e6f64..1e6,
        1 => Just(f64::NAN),
        1 => prop_oneof![Just(f64::INFINITY), Just(f64::NEG_INFINITY), Just(-0.0f64)],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite hardening: rank statistics are total functions. No
    /// finite-or-NaN (or infinite) input may panic, and results stay in
    /// the documented ranges.
    #[test]
    fn rank_stats_never_panic(pairs in prop::collection::vec((wild_f64(), wild_f64()), 0..32)) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let tau = spire_core::stats::kendall_tau(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&tau), "tau out of range: {tau}");
        let rho = spire_core::stats::spearman_rho(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&rho), "rho out of range: {rho}");
    }

    /// `overlap_at_k` is total over every `k` (including 0 and beyond
    /// both lengths), bounded in [0, 1], and symmetric in its lists.
    #[test]
    fn overlap_at_k_is_total_and_symmetric(
        a in prop::collection::vec(0u8..16, 0..12),
        b in prop::collection::vec(0u8..16, 0..12),
        k in 0usize..32,
    ) {
        let ab = spire_core::stats::overlap_at_k(&a, &b, k);
        let ba = spire_core::stats::overlap_at_k(&b, &a, k);
        prop_assert!((0.0..=1.0).contains(&ab), "overlap out of range: {ab}");
        prop_assert_eq!(ab.to_bits(), ba.to_bits(), "overlap not symmetric");
        prop_assert_eq!(spire_core::stats::overlap_at_k(&a, &b, 0).to_bits(), 1.0f64.to_bits());
    }

    /// Paper Sec. III-B: the fitted function lies on or above all of its
    /// training samples — for every fitting mode.
    #[test]
    fn roofline_is_upper_bound(samples in samples("m", 64)) {
        for mode in [RightFitMode::Graph, RightFitMode::Plateau, RightFitMode::Auto] {
            let opts = FitOptions { right_fit: mode, ..FitOptions::default() };
            let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &opts).unwrap();
            for s in &samples {
                let est = r.estimate_sample(s);
                prop_assert!(
                    est >= s.throughput() - tol(s.throughput()),
                    "mode {mode:?}: estimate {est} below throughput {} at I={}",
                    s.throughput(),
                    s.intensity()
                );
            }
        }
    }

    /// Left of the apex the fit is non-decreasing (increasing, concave-down
    /// segments from the origin).
    #[test]
    fn left_region_is_monotone_nondecreasing(samples in samples("m", 64)) {
        let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &FitOptions::default())
            .unwrap();
        if let Some(apex) = r.apex() {
            if apex.x > 0.0 {
                let mut prev = f64::NEG_INFINITY;
                for i in 0..=50 {
                    // Clamp: rounding in the multiply must not push the
                    // probe past the apex into the right region.
                    let x = (apex.x * i as f64 / 50.0).min(apex.x);
                    let v = r.estimate(x.max(f64::MIN_POSITIVE));
                    prop_assert!(v >= prev - tol(prev));
                    prev = v;
                }
            }
        }
    }

    /// Left knots are concave-down: slopes are non-increasing along the
    /// hull.
    #[test]
    fn left_knots_are_concave_down(samples in samples("m", 64)) {
        let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &FitOptions::default())
            .unwrap();
        let knots = r.left_knots();
        let slopes: Vec<f64> = knots
            .windows(2)
            .filter(|w| w[1].x > w[0].x)
            .map(|w| w[0].slope_to(&w[1]))
            .collect();
        for w in slopes.windows(2) {
            prop_assert!(w[1] <= w[0] + tol(w[0]), "slopes increased: {slopes:?}");
        }
    }

    /// Right-region knots descend: throughput is non-increasing across the
    /// chosen Pareto knots, and their slopes are non-decreasing
    /// (concave-up).
    #[test]
    fn right_knots_descend_concave_up(samples in samples("m", 64)) {
        let r = PiecewiseRoofline::fit("m".into(), samples.iter(), &FitOptions::default())
            .unwrap();
        if let Some(region) = r.right_region() {
            let knots = region.knots();
            for w in knots.windows(2) {
                prop_assert!(w[1].y <= w[0].y + tol(w[0].y));
            }
            let slopes: Vec<f64> = knots
                .windows(2)
                .filter(|w| w[1].x > w[0].x)
                .map(|w| w[0].slope_to(&w[1]))
                .collect();
            for w in slopes.windows(2) {
                prop_assert!(w[1] >= w[0] - tol(w[0]), "not concave-up: {slopes:?}");
            }
        }
    }

    /// The ensemble estimate equals the minimum per-metric merged estimate
    /// under the paper's aggregation, and the mean under the ablation.
    #[test]
    fn ensemble_aggregation_matches_definition(
        a in samples("metric_a", 32),
        b in samples("metric_b", 32),
    ) {
        let mut train = SampleSet::new();
        train.extend(a.iter().cloned());
        train.extend(b.iter().cloned());
        let mut wl = SampleSet::new();
        wl.extend(a.iter().take(4).cloned());
        wl.extend(b.iter().take(4).cloned());

        for agg in [EnsembleAggregation::Min, EnsembleAggregation::Mean] {
            let cfg = TrainConfig { aggregation: agg, ..TrainConfig::default() };
            let model = SpireModel::train(&train, cfg).unwrap();
            let est = model.estimate(&wl).unwrap();
            let vals: Vec<f64> = est.per_metric().values().map(|m| m.merged).collect();
            let expect = match agg {
                EnsembleAggregation::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
                EnsembleAggregation::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                _ => unreachable!(),
            };
            prop_assert!((est.throughput() - expect).abs() <= tol(expect));
        }
    }

    /// Eq. (1): the merged per-metric estimate is bounded by the extreme
    /// single-sample estimates, for both merge strategies.
    #[test]
    fn merged_estimate_is_bounded_by_extremes(train in samples("m", 48), wl in samples("m", 16)) {
        for merge in [MergeStrategy::TimeWeighted, MergeStrategy::Unweighted] {
            let cfg = TrainConfig { merge, ..TrainConfig::default() };
            let train_set: SampleSet = train.iter().cloned().collect();
            let model = SpireModel::train(&train_set, cfg).unwrap();
            let wl_set: SampleSet = wl.iter().cloned().collect();
            let est = model.estimate(&wl_set).unwrap();
            for me in est.per_metric().values() {
                prop_assert!(me.merged >= me.min_sample_estimate - tol(me.merged));
                prop_assert!(me.merged <= me.max_sample_estimate + tol(me.merged));
            }
        }
    }

    /// Every input point is dominated by (or on) the Pareto front, and no
    /// front point dominates another.
    #[test]
    fn pareto_front_dominates_all_points(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..64)
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty());
        for p in &points {
            prop_assert!(
                front.iter().any(|f| f.x >= p.x && f.y >= p.y),
                "point ({}, {}) not covered by front",
                p.x,
                p.y
            );
        }
        for (i, f) in front.iter().enumerate() {
            for (j, g) in front.iter().enumerate() {
                if i != j {
                    prop_assert!(!(g.x >= f.x && g.y >= f.y && (g.x > f.x || g.y > f.y)));
                }
            }
        }
    }

    /// The upper hull from the origin covers every point left of the apex.
    #[test]
    fn hull_covers_left_points(
        pts in prop::collection::vec((0.001f64..100.0, 0.0f64..100.0), 1..64)
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let hull = upper_hull_from_origin(&points);
        let apex = *hull.last().unwrap();
        for p in &points {
            if p.x <= apex.x {
                let v = piecewise_eval(&hull, p.x);
                prop_assert!(v >= p.y - tol(p.y), "hull({}) = {v} < {}", p.x, p.y);
            }
        }
    }

    /// Dijkstra agrees with Floyd-Warshall on random small graphs.
    #[test]
    fn dijkstra_matches_floyd_warshall(
        n in 2usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10, 0.0f64..10.0), 0..40)
    ) {
        let mut g = DiGraph::new();
        for _ in 0..n {
            g.add_node();
        }
        let mut dist = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for &(a, b, w) in &edges {
            let (a, b) = (a % n, b % n);
            g.add_edge(a, b, w);
            if w < dist[a][b] {
                dist[a][b] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // `target` indexes the dist matrix
        for target in 0..n {
            match g.shortest_path(0, target) {
                Some(path) => {
                    prop_assert!((path.cost - dist[0][target]).abs() <= 1e-9);
                    // The reported path must be real: verify its cost.
                    let mut acc = 0.0;
                    for w in path.nodes.windows(2) {
                        let best = g
                            .edges(w[0])
                            .iter()
                            .filter(|(t, _)| *t == w[1])
                            .map(|(_, c)| *c)
                            .fold(f64::INFINITY, f64::min);
                        acc += best;
                    }
                    prop_assert!(acc <= dist[0][target] + 1e-9);
                }
                None => prop_assert!(dist[0][target].is_infinite()),
            }
        }
    }

    /// Model serialization round-trips estimates exactly.
    #[test]
    fn serde_round_trip_is_exact(train in samples("m", 32), probe in 0.0f64..200.0) {
        let set: SampleSet = train.iter().cloned().collect();
        let model = SpireModel::train(&set, TrainConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: SpireModel = serde_json::from_str(&json).unwrap();
        let m = spire_core::MetricId::new("m");
        let a = model.roofline(&m).unwrap().estimate(probe);
        let b = back.roofline(&m).unwrap().estimate(probe);
        prop_assert_eq!(a, b);
    }

    /// The columnar fit fast path is bit-identical to the generic row
    /// API for arbitrary sample populations (including M = 0 rows).
    #[test]
    fn column_fit_matches_row_fit(rows in samples("m", 64)) {
        let set: SampleSet = rows.iter().cloned().collect();
        let column = set.column(&spire_core::MetricId::new("m")).unwrap();
        for mode in [RightFitMode::Graph, RightFitMode::Plateau, RightFitMode::Auto] {
            let opts = FitOptions { right_fit: mode, ..FitOptions::default() };
            let by_rows = PiecewiseRoofline::fit("m".into(), rows.iter(), &opts).unwrap();
            let by_column = PiecewiseRoofline::fit_column(column, &opts).unwrap();
            prop_assert_eq!(&by_rows, &by_column, "mode {:?}", mode);
        }
    }

    /// Columnar grouping is row-order independent: interleaving samples
    /// across metrics in any order yields the same store and the same
    /// trained model as pushing them metric-by-metric.
    #[test]
    fn grouping_is_push_order_independent(rows in corpus(4, 24)) {
        let interleaved: SampleSet = rows.iter().cloned().collect();
        let mut grouped = SampleSet::new();
        for metric in interleaved.metrics().cloned().collect::<Vec<_>>() {
            for s in interleaved.samples_for(&metric) {
                grouped.push(s);
            }
        }
        prop_assert_eq!(&interleaved, &grouped);
        let a = SpireModel::train(&interleaved, TrainConfig::default()).unwrap();
        let b = SpireModel::train(&grouped, TrainConfig::default()).unwrap();
        prop_assert_eq!(a.rooflines(), b.rooflines());
    }

    /// Fanning training and estimation across worker threads is
    /// bit-identical to the serial path for every thread count.
    #[test]
    fn parallel_pipeline_matches_serial(
        train_rows in corpus(6, 24),
        probe_rows in corpus(6, 8),
        threads in 2usize..=8,
    ) {
        let train_set: SampleSet = train_rows.iter().cloned().collect();
        let probe_set: SampleSet = probe_rows.iter().cloned().collect();
        let serial_cfg = TrainConfig { threads: 1, ..TrainConfig::default() };
        let par_cfg = TrainConfig { threads, ..TrainConfig::default() };
        let serial = SpireModel::train(&train_set, serial_cfg).unwrap();
        let parallel = SpireModel::train(&train_set, par_cfg).unwrap();
        prop_assert_eq!(serial.rooflines(), parallel.rooflines());
        let a = serial.estimate(&probe_set).unwrap();
        let b = parallel.estimate(&probe_set).unwrap();
        prop_assert_eq!(a.throughput(), b.throughput());
        prop_assert_eq!(a.per_metric(), b.per_metric());
    }

    /// The batch SoA estimate kernel ([`PiecewiseRoofline::estimate_column`])
    /// is bit-identical to the scalar per-sample path, for models trained
    /// at every thread count (serial and parallel training must agree on
    /// the fit, and both estimate paths must agree on every sample).
    #[test]
    fn batch_estimate_matches_scalar_across_thread_counts(
        train_rows in corpus(4, 24),
        probe_rows in corpus(4, 12),
        threads in 1usize..=8,
    ) {
        let train_set: SampleSet = train_rows.iter().cloned().collect();
        let probe_set: SampleSet = probe_rows.iter().cloned().collect();
        let cfg = TrainConfig { threads, ..TrainConfig::default() };
        let model = SpireModel::train(&train_set, cfg).unwrap();
        for (metric, column) in probe_set.by_metric() {
            let Some(roofline) = model.roofline(metric) else { continue };
            let batch = roofline.estimate_column(column);
            prop_assert_eq!(batch.len(), column.len());
            for (est, &intensity) in batch.iter().zip(column.intensities()) {
                let scalar = roofline.estimate(intensity);
                prop_assert_eq!(
                    est.to_bits(),
                    scalar.to_bits(),
                    "batch {} != scalar {} at I={} ({} threads)",
                    est,
                    scalar,
                    intensity,
                    threads
                );
            }
        }
    }

    /// Every fit over arbitrary valid samples satisfies the model
    /// invariants ([`PiecewiseRoofline::validate`]), in every right-fit
    /// mode: the validator must never reject what the fitter produces.
    #[test]
    fn every_fit_validates(rows in samples("m", 64)) {
        for mode in [RightFitMode::Graph, RightFitMode::Plateau, RightFitMode::Auto] {
            let opts = FitOptions { right_fit: mode, ..FitOptions::default() };
            let r = PiecewiseRoofline::fit("m".into(), rows.iter(), &opts).unwrap();
            prop_assert!(r.validate().is_ok(), "mode {:?}: {:?}", mode, r.validate());
        }
    }

    /// A model pushed through the checksummed snapshot format estimates
    /// bit-identically to the in-memory original.
    #[test]
    fn snapshot_round_trip_estimates_bit_identical(
        train_rows in corpus(4, 24),
        probe_rows in corpus(4, 8),
    ) {
        let train_set: SampleSet = train_rows.iter().cloned().collect();
        let probe_set: SampleSet = probe_rows.iter().cloned().collect();
        let model = SpireModel::train(&train_set, TrainConfig::default()).unwrap();
        let json = spire_core::ModelSnapshot::from_model(&model).unwrap().to_json();
        let (loaded, report) =
            spire_core::snapshot::load_model(&json, spire_core::SnapshotMode::Strict).unwrap();
        prop_assert!(!report.unwrap().is_degraded());
        prop_assert_eq!(&model, &loaded);
        let a = model.estimate(&probe_set).unwrap();
        let b = loaded.estimate(&probe_set).unwrap();
        prop_assert_eq!(a.throughput().to_bits(), b.throughput().to_bits());
        prop_assert_eq!(a.per_metric(), b.per_metric());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The chunked estimate kernel is a pure performance rewrite: for
    /// every chunk width it is bit-identical to the scalar `estimate`
    /// chain — NaN, infinities, and region-boundary-exact probes
    /// included, in every chunk position.
    #[test]
    fn estimate_soa_chunked_is_bitwise_scalar_for_all_widths(
        rows in samples("m", 48),
        probes in prop::collection::vec(wild_f64(), 1..200),
        width in 1usize..100,
    ) {
        let r = PiecewiseRoofline::fit("m".into(), rows.iter(), &FitOptions::default()).unwrap();
        // Mix in boundary-exact probes so `piecewise_eval`'s end-knot
        // early returns land in arbitrary chunk positions.
        let mut probes = probes;
        if let Some(apex) = r.apex() {
            probes.push(apex.x);
        }
        if let Some(region) = r.right_region() {
            if let (Some(f), Some(l)) = (region.knots().first(), region.knots().last()) {
                probes.push(f.x);
                probes.push(l.x);
            }
        }
        let mut out = Vec::new();
        r.estimate_soa_chunked(&probes, &mut out, width);
        prop_assert_eq!(out.len(), probes.len());
        for (&x, &got) in probes.iter().zip(&out) {
            prop_assert_eq!(
                got.to_bits(),
                r.estimate(x).to_bits(),
                "width {}, x {}",
                width,
                x
            );
        }
    }

    /// The binary column file round-trips hostile values bit-exactly, and
    /// a workload loaded from it estimates bit-identically to the
    /// original at threads 1 and 0.
    #[test]
    fn colfile_roundtrip_preserves_estimates_across_threads(
        train_rows in corpus(3, 24),
        hostile in prop::collection::vec(
            (0usize..3, wild_f64(), wild_f64(), wild_f64()),
            0..16
        ),
    ) {
        let train_set: SampleSet = train_rows.iter().cloned().collect();
        let mut workload = train_set.clone();
        for (m, t, w, d) in hostile {
            workload.push_unchecked(format!("metric_{m}").into(), t, w, d);
        }
        let image = spire_core::colfile::write_sections([("w", &workload)], "meta");
        let decoded =
            spire_core::colfile::read(&image, spire_core::SnapshotMode::Strict).unwrap();
        prop_assert!(decoded.report.is_clean());
        prop_assert_eq!(decoded.meta.as_str(), "meta");
        let loaded = &decoded.sections[0].1;
        // Column-by-column bit equality (PartialEq would reject NaN rows).
        prop_assert_eq!(loaded.columns().len(), workload.columns().len());
        for (col, orig) in loaded.columns().iter().zip(workload.columns()) {
            prop_assert_eq!(col.metric(), orig.metric());
            for (field, (a, b)) in [
                (col.times(), orig.times()),
                (col.works(), orig.works()),
                (col.metric_deltas(), orig.metric_deltas()),
            ]
            .into_iter()
            .enumerate()
            {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "field {}", field);
                }
            }
        }
        // Same estimates (or same refusal) from either copy, at both
        // thread settings.
        let mut outcomes = Vec::new();
        for threads in [1usize, 0] {
            let config = TrainConfig { threads, ..TrainConfig::default() };
            let model = SpireModel::train(&train_set, config).unwrap();
            for set in [&workload, loaded] {
                outcomes.push(model.estimate(set).ok().map(|e| e.throughput().to_bits()));
            }
        }
        prop_assert!(
            outcomes.windows(2).all(|w| w[0] == w[1]),
            "estimates diverged: {:?}",
            outcomes
        );
    }
}
