//! Integrity tests for [`SnapshotDelta`]: a delta is anchored at both
//! ends by snapshot fingerprints, so applying it to the wrong base, a
//! stale base, or after in-flight corruption must be a typed refusal —
//! never a silently wrong model. These are the acceptance tests for the
//! durability layer's replay path, which trusts `apply` to catch damage
//! the per-record checksums cannot see.

use std::sync::OnceLock;

use proptest::prelude::*;
use spire_core::fault::{flip_digit, truncate, FaultRng};
use spire_core::{
    ModelSnapshot, Sample, SampleSet, SnapshotDelta, SnapshotMode, SpireError, SpireModel,
    TrainConfig, SNAPSHOT_FORMAT_VERSION,
};

/// A small multi-metric corpus; `salt` varies the weights so different
/// salts train to different rooflines (and different fingerprints).
fn corpus(metrics: usize, salt: u64) -> SampleSet {
    let mut set = SampleSet::new();
    for m in 0..metrics {
        for i in 1..8 {
            let w = (3 * i + m) as f64 + salt as f64 * 0.25;
            let mem = (14 - i) as f64;
            set.push(Sample::new(format!("metric_{m:02}").as_str(), 10.0, w, mem).unwrap());
        }
    }
    set
}

/// Shared fixture: a base snapshot, an updated snapshot whose front moved
/// on every metric, the expected loaded model, and the delta between them.
struct Fixture {
    base: ModelSnapshot,
    updated: ModelSnapshot,
    expected: SpireModel,
    delta_json: String,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base_set = corpus(4, 0);
        let mut updated_set = base_set.clone();
        // New samples above the existing front: every metric's record
        // changes, so the delta is non-trivial.
        for m in 0..4 {
            updated_set
                .push(Sample::new(format!("metric_{m:02}").as_str(), 10.0, 400.0, 8.0).unwrap());
        }
        let base_model = SpireModel::train(&base_set, TrainConfig::default()).unwrap();
        let expected = SpireModel::train(&updated_set, TrainConfig::default()).unwrap();
        let base = ModelSnapshot::from_model(&base_model).unwrap();
        let updated = ModelSnapshot::from_model(&expected).unwrap();
        let delta_json = SnapshotDelta::between(&base, &updated).to_json();
        Fixture {
            base,
            updated,
            expected,
            delta_json,
        }
    })
}

#[test]
fn delta_round_trips_and_applies_bit_identically() {
    let f = fixture();
    let delta = SnapshotDelta::from_json(&f.delta_json).unwrap();
    assert!(
        !delta.changed.is_empty(),
        "fixture delta must be non-trivial"
    );
    let applied = delta.apply(&f.base).unwrap();
    assert_eq!(applied.fingerprint(), f.updated.fingerprint());
    let loaded = applied.into_model(SnapshotMode::Strict).unwrap();
    assert_eq!(loaded.model, f.expected);
}

#[test]
fn delta_refuses_a_mismatched_base() {
    let f = fixture();
    let delta = SnapshotDelta::from_json(&f.delta_json).unwrap();
    // A snapshot from an unrelated training history.
    let other_model = SpireModel::train(&corpus(4, 9), TrainConfig::default()).unwrap();
    let other = ModelSnapshot::from_model(&other_model).unwrap();
    assert_ne!(other.fingerprint(), f.base.fingerprint());
    let err = delta.apply(&other).unwrap_err();
    assert!(
        matches!(err, SpireError::SnapshotFormat { .. }),
        "expected SnapshotFormat, got {err:?}"
    );
    assert!(
        err.to_string()
            .contains("delta applies to base fingerprint"),
        "refusal must name the fingerprint mismatch: {err}"
    );
}

#[test]
fn delta_refuses_a_stale_base() {
    // Applying a delta to the snapshot it *produces* (the history has
    // already advanced past its base) is the replay-ordering bug the
    // WAL must never commit: it is refused, not re-applied.
    let f = fixture();
    let delta = SnapshotDelta::from_json(&f.delta_json).unwrap();
    let err = delta.apply(&f.updated).unwrap_err();
    assert!(
        err.to_string()
            .contains("delta applies to base fingerprint"),
        "stale base must be refused by fingerprint: {err}"
    );
}

#[test]
fn tampered_result_fingerprint_is_refused() {
    let f = fixture();
    let mut delta = SnapshotDelta::from_json(&f.delta_json).unwrap();
    delta.result_fingerprint = f.base.fingerprint();
    let err = delta.apply(&f.base).unwrap_err();
    assert!(
        matches!(err, SpireError::SnapshotFormat { .. }),
        "expected SnapshotFormat, got {err:?}"
    );
    assert!(
        err.to_string()
            .contains("applied delta produced fingerprint"),
        "refusal must name the result mismatch: {err}"
    );
}

#[test]
fn unsupported_delta_versions_are_refused() {
    let f = fixture();
    for version in [0, SNAPSHOT_FORMAT_VERSION + 1] {
        let mut delta = SnapshotDelta::from_json(&f.delta_json).unwrap();
        delta.format_version = version;
        let err = SnapshotDelta::from_json(&delta.to_json()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported delta format version"),
            "version {version}: {err}"
        );
    }
}

#[test]
fn truncated_delta_json_is_refused() {
    let f = fixture();
    for fraction in [0.0, 0.1, 0.5, 0.9, 0.99] {
        let cut = truncate(&f.delta_json, fraction);
        let err = SnapshotDelta::from_json(cut).unwrap_err();
        assert!(
            matches!(err, SpireError::SnapshotFormat { .. }),
            "fraction {fraction}: {err:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The robustness contract for delta transport: flip one digit
    /// anywhere in the serialized delta (or leave it pristine) and the
    /// outcome is one of exactly three things — a parse refusal, an
    /// apply refusal, or a successful application whose roofline
    /// geometry is bit-identical to the clean update. Damage is either
    /// caught by the version/algorithm checks, the fingerprint anchors,
    /// or the per-record checksums at strict load; it never flows
    /// silently into the served model.
    #[test]
    fn flipped_delta_digits_never_yield_a_silent_wrong_model(
        seed in 0u64..1 << 48,
        corrupt in prop_oneof![3 => Just(true), 1 => Just(false)],
    ) {
        let f = fixture();
        let mut rng = FaultRng::new(seed);
        let text = if corrupt {
            match flip_digit(&f.delta_json, &mut rng) {
                Some(t) => t,
                None => return Ok(()),
            }
        } else {
            f.delta_json.clone()
        };
        let delta = match SnapshotDelta::from_json(&text) {
            Ok(d) => d,
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
                return Ok(());
            }
        };
        let applied = match delta.apply(&f.base) {
            Ok(a) => a,
            Err(e) => {
                prop_assert!(
                    matches!(e, SpireError::SnapshotFormat { .. }),
                    "apply must refuse typed: {e:?}"
                );
                return Ok(());
            }
        };
        // Application succeeded: the fingerprint anchors held, so the
        // spliced record set is the clean one. A flip that survived to
        // here hit fingerprint-invisible metadata (config, provenance,
        // reports) or roofline bytes whose per-record checksum now
        // disagrees — strict load settles which.
        prop_assert_eq!(applied.fingerprint(), f.updated.fingerprint());
        if !corrupt {
            prop_assert_eq!(&text, &f.delta_json);
        }
        match applied.into_model(SnapshotMode::Strict) {
            Ok(loaded) => {
                prop_assert_eq!(loaded.model.rooflines(), f.expected.rooflines());
            }
            Err(e) => {
                prop_assert!(corrupt, "pristine delta failed strict load: {e}");
            }
        }
    }
}
