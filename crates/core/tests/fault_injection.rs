//! Fault-injection suite: drives every containment path in the crate —
//! poisoned sample columns, panicking and erring fits, corrupted and
//! truncated snapshots — with deterministic, seeded faults from
//! [`spire_core::fault`].
//!
//! These are the acceptance tests for the robustness contract: training
//! degrades to the surviving metrics instead of tearing down, damaged
//! snapshots are salvaged (lenient) or refused (strict) with the damage
//! attributed to the record that carries it, and nothing in the pipeline
//! panics past the containment boundary.

use spire_core::fault::{
    erring_fit, flip_digit, panicking_fit, poison_metric, silence_panics, truncate, FaultRng,
};
use spire_core::snapshot::load_model;
use spire_core::{
    MetricId, ModelSnapshot, Sample, SampleSet, SnapshotMode, SpireError, SpireModel, TrainConfig,
    TrainQuarantineReason, TrainStrictness,
};

/// A clean multi-metric training corpus: `metrics` metrics, 6 samples
/// each, varied enough to give non-trivial left and right regions.
fn clean_corpus(metrics: usize) -> SampleSet {
    let mut set = SampleSet::new();
    for m in 0..metrics {
        for i in 1..7 {
            let w = (4 * i + m) as f64;
            let delta = (12 - i) as f64;
            set.push(Sample::new(format!("metric_{m:02}").as_str(), 10.0, w, delta).unwrap());
        }
    }
    set
}

#[test]
fn poisoned_column_is_quarantined_leniently_and_fatal_strictly() {
    let mut set = clean_corpus(4);
    let target = MetricId::new("metric_01");
    let mut rng = FaultRng::new(0xfeed);
    // NaN/inf/negative rows flow into the fit, producing a roofline that
    // fails validation (or a fit error) — never a crash.
    poison_metric(&mut set, &target, &mut rng, 8);

    let outcome =
        SpireModel::train_with_report(&set, TrainConfig::default(), TrainStrictness::Lenient)
            .unwrap();
    assert_eq!(outcome.model.metric_count(), 3);
    assert!(outcome.model.roofline(&target).is_none());
    assert!(outcome.report.is_degraded());
    assert_eq!(outcome.report.quarantined.len(), 1);
    assert_eq!(outcome.report.quarantined[0].metric, target);
    // The degraded model still estimates over the survivors.
    let mut wl = SampleSet::new();
    wl.push(Sample::new("metric_00", 10.0, 8.0, 4.0).unwrap());
    assert!(outcome.model.estimate(&wl).is_ok());

    let err = SpireModel::train_with_report(&set, TrainConfig::default(), TrainStrictness::Strict)
        .unwrap_err();
    match err {
        SpireError::ModelInvariantViolation { metric, .. } => assert_eq!(metric, "metric_01"),
        SpireError::FitPanicked { metric, .. } => assert_eq!(metric, "metric_01"),
        other => panic!("expected a typed per-metric error, got {other:?}"),
    }
}

#[test]
fn poisoning_many_seeds_never_escapes_containment() {
    // Whatever the poison placement, lenient training must return either
    // a degraded model or a typed error — never unwind.
    for seed in 0..50u64 {
        let mut set = clean_corpus(5);
        let mut rng = FaultRng::new(seed);
        let victim = MetricId::new(format!("metric_{:02}", rng.index(5)));
        poison_metric(&mut set, &victim, &mut rng, 4);
        let result = silence_panics(|| {
            SpireModel::train_with_report(&set, TrainConfig::default(), TrainStrictness::Lenient)
        });
        match result {
            Ok(outcome) => {
                // If the poisoned metric survived, its fit passed
                // validation despite the hostile rows; that is allowed
                // (e.g. a negative count can still fit under the hull) —
                // what matters is nothing crashed.
                assert!(outcome.model.metric_count() >= 4, "seed {seed}");
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "seed {seed}");
            }
        }
    }
}

#[test]
fn injected_panics_are_contained_across_thread_counts() {
    let set = clean_corpus(6);
    for threads in [1, 2, 4, 8] {
        let config = TrainConfig {
            threads,
            ..TrainConfig::default()
        };
        let outcome = silence_panics(|| {
            SpireModel::train_with_report_using(
                &set,
                config,
                TrainStrictness::Lenient,
                panicking_fit("metric_02"),
            )
        })
        .unwrap();
        assert_eq!(outcome.model.metric_count(), 5, "threads {threads}");
        assert_eq!(outcome.report.quarantined.len(), 1);
        assert_eq!(
            outcome.report.quarantined[0].reason,
            TrainQuarantineReason::FitPanicked
        );
        assert!(outcome.report.quarantined[0]
            .detail
            .contains("injected panic"));
    }
}

#[test]
fn erring_fits_quarantine_with_their_own_reason() {
    let set = clean_corpus(4);
    let outcome = SpireModel::train_with_report_using(
        &set,
        TrainConfig::default(),
        TrainStrictness::Lenient,
        erring_fit("metric_03"),
    )
    .unwrap();
    assert_eq!(
        outcome.report.quarantined[0].reason,
        TrainQuarantineReason::FitFailed
    );
    assert_eq!(outcome.report.by_reason()["fit_failed"], 1);
}

#[test]
fn error_budget_bounds_lenient_degradation() {
    let set = clean_corpus(4);
    let config = TrainConfig {
        metric_error_budget: 0.25,
        ..TrainConfig::default()
    };
    // Two of four metrics fail: 0.5 > budget 0.25.
    let err = silence_panics(|| {
        SpireModel::train_with_report_using(
            &set,
            config,
            TrainStrictness::Lenient,
            panicking_fit("metric_0"), // matches metric_00..metric_03
        )
    });
    // All four match the needle, so everything is quarantined.
    match err.unwrap_err() {
        SpireError::ErrorBudgetExceeded {
            quarantined,
            total,
            budget,
        } => {
            assert_eq!((quarantined, total), (4, 4));
            assert!((budget - 0.25).abs() < 1e-12);
        }
        other => panic!("expected ErrorBudgetExceeded, got {other:?}"),
    }
}

#[test]
fn flipped_snapshot_records_salvage_and_attribute() {
    let model = SpireModel::train(&clean_corpus(5), TrainConfig::default()).unwrap();
    let pristine = ModelSnapshot::from_model(&model).unwrap();
    // Over many seeds: flip one digit inside one record's payload. The
    // checksum must catch it; lenient load drops exactly that record.
    let mut salvaged = 0;
    for seed in 0..40u64 {
        let mut rng = FaultRng::new(seed);
        let mut snapshot = pristine.clone();
        let victim = rng.index(snapshot.metrics.len());
        let Some(damaged) = flip_digit(&snapshot.metrics[victim].roofline, &mut rng) else {
            continue;
        };
        if damaged == snapshot.metrics[victim].roofline {
            continue;
        }
        snapshot.metrics[victim].roofline = damaged;
        let victim_metric = snapshot.metrics[victim].metric.clone();
        let json = snapshot.to_json();

        let strict = ModelSnapshot::from_json(&json)
            .unwrap()
            .into_model(SnapshotMode::Strict);
        assert!(strict.is_err(), "seed {seed}");

        let lenient = ModelSnapshot::from_json(&json)
            .unwrap()
            .into_model(SnapshotMode::Lenient)
            .unwrap();
        assert_eq!(lenient.report.dropped.len(), 1, "seed {seed}");
        assert_eq!(lenient.report.dropped[0].metric, victim_metric);
        assert_eq!(lenient.model.metric_count(), 4);
        salvaged += 1;
    }
    assert!(
        salvaged > 30,
        "only {salvaged} seeds exercised the salvage path"
    );
}

#[test]
fn container_level_digit_flips_never_panic() {
    let model = SpireModel::train(&clean_corpus(3), TrainConfig::default()).unwrap();
    let json = ModelSnapshot::from_model(&model).unwrap().to_json();
    for seed in 0..60u64 {
        let mut rng = FaultRng::new(seed);
        let damaged = flip_digit(&json, &mut rng).unwrap();
        // Any outcome is acceptable except a panic: pristine load (the
        // flip hit insignificant text), salvage, or a typed refusal.
        match load_model(&damaged, SnapshotMode::Lenient) {
            Ok((model, _)) => assert!(model.metric_count() >= 1),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn truncated_snapshots_refuse_in_both_modes() {
    let model = SpireModel::train(&clean_corpus(4), TrainConfig::default()).unwrap();
    let json = ModelSnapshot::from_model(&model).unwrap().to_json();
    for fraction in [0.0, 0.1, 0.5, 0.9, 0.99] {
        let cut = truncate(&json, fraction);
        for mode in [SnapshotMode::Lenient, SnapshotMode::Strict] {
            let err = load_model(cut, mode).unwrap_err();
            assert!(
                matches!(err, SpireError::SnapshotFormat { .. }),
                "fraction {fraction}: {err:?}"
            );
        }
    }
}

#[test]
fn zero_time_workload_fails_typed_through_the_snapshot_path() {
    // The DegenerateWeights guard must hold for snapshot-loaded models
    // exactly as for in-memory ones, for both merge strategies.
    for merge in [
        spire_core::MergeStrategy::TimeWeighted,
        spire_core::MergeStrategy::Unweighted,
    ] {
        let config = TrainConfig {
            merge,
            ..TrainConfig::default()
        };
        let model = SpireModel::train(&clean_corpus(2), config).unwrap();
        let json = ModelSnapshot::from_model(&model).unwrap().to_json();
        let (loaded, _) = load_model(&json, SnapshotMode::Strict).unwrap();
        let mut wl = SampleSet::new();
        wl.push_unchecked(MetricId::new("metric_00"), 0.0, 1.0, 1.0);
        match loaded.estimate(&wl).unwrap_err() {
            SpireError::DegenerateWeights { metric } => assert_eq!(metric, "metric_00"),
            other => panic!("{merge:?}: expected DegenerateWeights, got {other:?}"),
        }
    }
}

#[test]
fn quarantine_order_is_deterministic_across_thread_counts() {
    let set = clean_corpus(8);
    let mut reference: Option<Vec<String>> = None;
    for threads in [1, 2, 4, 8] {
        let config = TrainConfig {
            threads,
            ..TrainConfig::default()
        };
        let outcome = silence_panics(|| {
            SpireModel::train_with_report_using(
                &set,
                config,
                TrainStrictness::Lenient,
                // Fail every other metric.
                |column, fit| {
                    let idx: usize = column.metric().as_str()[7..].parse().unwrap();
                    if idx % 2 == 1 {
                        panic!("odd metric down");
                    }
                    spire_core::PiecewiseRoofline::fit_column(column, fit)
                },
            )
        })
        .unwrap();
        let order: Vec<String> = outcome
            .report
            .quarantined
            .iter()
            .map(|q| q.metric.to_string())
            .collect();
        match &reference {
            None => reference = Some(order),
            Some(expect) => assert_eq!(&order, expect, "threads {threads}"),
        }
    }
    assert_eq!(reference.unwrap().len(), 4);
}
