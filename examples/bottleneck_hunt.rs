//! End-to-end bottleneck hunt on the simulated CPU: collect multiplexed
//! counter samples from a few training workloads, train a SPIRE
//! ensemble, analyze a memory-bound test workload, and cross-check the
//! verdict against Top-Down Analysis.
//!
//! Run with: `cargo run --release --example bottleneck_hunt`

use spire_core::catalog::MetricCatalog;
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::{collect, SessionConfig};
use spire_sim::{Core, CoreConfig, Event};
use spire_tma::analyze;
use spire_workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let core_cfg = CoreConfig::skylake_server();
    let session = SessionConfig {
        interval_cycles: 60_000,
        slice_cycles: 3_000,
        pmu_slots: 4,
        switch_overhead_cycles: 60,
        max_cycles: 600_000,
    };

    // 1. Collect training samples from a handful of varied workloads.
    let mut training = spire_core::SampleSet::new();
    for profile in suite::training().into_iter().take(8) {
        let mut core = Core::new(core_cfg);
        let mut stream = profile.stream(42);
        let report = collect(&mut core, &mut stream, Event::ALL, &session);
        println!(
            "collected {:4} samples from {} ({}), overhead {:.2}%",
            report.samples.len(),
            profile.name,
            profile.config,
            report.overhead_fraction() * 100.0
        );
        training.merge(report.samples);
    }

    // 2. Train the ensemble.
    let model = SpireModel::train(&training, TrainConfig::default())?;
    println!("\ntrained {} metric rooflines", model.metric_count());

    // 3. Analyze the paper's memory-bound test workload (ONNX T5).
    let target = suite::by_name("onnx", "T5 Encoder, Std.").expect("suite workload");
    let mut core = Core::new(core_cfg);
    let mut stream = target.stream(43);
    let report = collect(&mut core, &mut stream, Event::ALL, &session);
    let estimate = model.estimate(&report.samples)?;
    let spire_report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());

    println!(
        "\nSPIRE top metrics for {} ({}):",
        target.name, target.config
    );
    print!("{}", spire_report.to_table(10));

    // 4. Cross-check with TMA on a dedicated run.
    let mut core = Core::new(core_cfg);
    let mut stream = target.stream(43);
    core.run(&mut stream, session.max_cycles);
    let tma = analyze(core.counters(), &core_cfg);
    println!("\nTMA says: {}", tma.summary());
    println!("TMA main bottleneck: {}", tma.dominant_bottleneck());
    println!(
        "SPIRE's top-10 contains that area: {}",
        spire_report.area_in_top(tma.dominant_bottleneck(), 10)
    );
    Ok(())
}
