//! Quickstart: train a SPIRE model from counter samples and rank the
//! likely bottlenecks of a new workload.
//!
//! Run with: `cargo run --example quickstart`

use spire_core::catalog::MetricCatalog;
use spire_core::{BottleneckReport, Sample, SampleSet, SpireModel, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Training data: samples of (time, work, metric delta) per metric.
    //    In practice these come from `perf stat` or the bundled CPU
    //    simulator; here we hand-write a tiny corpus. Units: cycles for
    //    T, instructions for W, so throughput is IPC.
    let mut training = SampleSet::new();
    for (cycles, instrs, stalls, misses) in [
        (1e6, 0.8e6, 6.0e5, 2.0e4),
        (1e6, 1.5e6, 3.0e5, 1.0e4),
        (1e6, 2.4e6, 1.2e5, 4.0e3),
        (1e6, 3.1e6, 4.0e4, 1.5e3),
        (1e6, 3.5e6, 1.0e4, 6.0e2),
    ] {
        training.push(Sample::new(
            "cycle_activity.stalls_total",
            cycles,
            instrs,
            stalls,
        )?);
        training.push(Sample::new(
            "longest_lat_cache.miss",
            cycles,
            instrs,
            misses,
        )?);
    }

    // 2. Train the ensemble: one piecewise-linear roofline per metric.
    let model = SpireModel::train(&training, TrainConfig::default())?;
    println!("trained {} metric rooflines", model.metric_count());

    // 3. Analyze a new workload's samples.
    let mut workload = SampleSet::new();
    workload.push(Sample::new(
        "cycle_activity.stalls_total",
        1e6,
        1.1e6,
        5.5e5,
    )?);
    workload.push(Sample::new("longest_lat_cache.miss", 1e6, 1.1e6, 2.0e3)?);

    let estimate = model.estimate(&workload)?;
    println!(
        "ensemble max-throughput estimate: {:.2} IPC",
        estimate.throughput()
    );

    // 4. The ranking: metrics with the lowest estimates are the likely
    //    bottlenecks — here the stall counter, since the workload stalls
    //    far more than its cache misses explain.
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
    println!("\nranked bottleneck metrics:");
    print!("{}", report.to_table(10));
    Ok(())
}
