//! Importing real `perf stat` data: parse machine-readable perf output,
//! build SPIRE samples, train, and rank — the path a user takes on real
//! hardware instead of the bundled simulator.
//!
//! The embedded text mimics `perf stat -I 2000 -x,` on a CPU whose IPC
//! degrades as branch mispredictions rise.
//!
//! Run with: `cargo run --example perf_import`

use spire_core::catalog::MetricCatalog;
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::perf::import_perf_stat;

/// Synthetic-but-realistic perf stat interval output. Each 2-second
/// interval reports the fixed counters plus two metrics. IPC falls from
/// 2.4 to 0.8 as mispredictions climb; cache misses stay flat. The metric
/// rows carry 50% running fractions (the two events share one counter),
/// so the importer scales their counts by 2x — multiplex correction.
const PERF_TRAINING: &str = "\
# started on Fri Jul  4 09:00:00 2026
2.000,4800000000,,inst_retired.any,2000000000,100.00,,
2.000,2000000000,,cpu_clk_unhalted.thread,2000000000,100.00,,
2.000,2400000,,br_misp_retired.all_branches,1000000000,50.00,,
2.000,9600000,,longest_lat_cache.miss,1000000000,50.00,,
4.000,3600000000,,inst_retired.any,2000000000,100.00,,
4.000,2000000000,,cpu_clk_unhalted.thread,2000000000,100.00,,
4.000,7200000,,br_misp_retired.all_branches,1000000000,50.00,,
4.000,7200000,,longest_lat_cache.miss,1000000000,50.00,,
6.000,2400000000,,inst_retired.any,2000000000,100.00,,
6.000,2000000000,,cpu_clk_unhalted.thread,2000000000,100.00,,
6.000,12000000,,br_misp_retired.all_branches,1000000000,50.00,,
6.000,4800000,,longest_lat_cache.miss,1000000000,50.00,,
8.000,1600000000,,inst_retired.any,2000000000,100.00,,
8.000,2000000000,,cpu_clk_unhalted.thread,2000000000,100.00,,
8.000,16000000,,br_misp_retired.all_branches,1000000000,50.00,,
8.000,3200000,,longest_lat_cache.miss,1000000000,50.00,,
";

/// The workload under analysis: low IPC with heavy mispredictions.
const PERF_WORKLOAD: &str = "\
2.000,1800000000,,inst_retired.any,2000000000,100.00,,
2.000,2000000000,,cpu_clk_unhalted.thread,2000000000,100.00,,
2.000,13500000,,br_misp_retired.all_branches,1000000000,50.00,,
2.000,3600000,,longest_lat_cache.miss,1000000000,50.00,,
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Import: perf CSV -> SPIRE samples (W=instructions, T=cycles).
    let training = import_perf_stat(PERF_TRAINING)?;
    println!(
        "imported {} training samples covering {} metrics",
        training.len(),
        training.metrics().count()
    );

    // 2. Train and analyze exactly as with simulated data.
    let model = SpireModel::train(&training, TrainConfig::default())?;
    let workload = import_perf_stat(PERF_WORKLOAD)?;
    let estimate = model.estimate(&workload)?;
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());

    println!(
        "\nworkload IPC estimate: {:.2} (measured: {:.2})",
        estimate.throughput(),
        1.8e9 / 2.0e9
    );
    println!("\nranked metrics:");
    print!("{}", report.to_table(5));

    // The misprediction counter should rank as the bottleneck: the
    // workload's instructions-per-misprediction is low, where training
    // showed low IPC.
    let top = report.rows().first().expect("non-empty report");
    println!(
        "\nprimary suspect: {} ({})",
        top.metric,
        top.abbr.as_deref().unwrap_or("uncataloged")
    );
    Ok(())
}
