//! Rendering learned rooflines: train a small ensemble on simulated
//! counters and write SVG plots of two contrasting metric rooflines
//! (like the paper's Fig. 7), plus an ASCII preview in the terminal.
//!
//! Run with: `cargo run --release --example plot_rooflines`

use spire_core::{MetricId, SpireModel, TrainConfig};
use spire_counters::{collect, SessionConfig};
use spire_plot::roofline_chart;
use spire_sim::{Core, CoreConfig, Event};
use spire_workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = SessionConfig {
        interval_cycles: 60_000,
        slice_cycles: 3_000,
        pmu_slots: 4,
        switch_overhead_cycles: 60,
        max_cycles: 500_000,
    };

    let mut training = spire_core::SampleSet::new();
    for profile in suite::training().into_iter().take(10) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = profile.stream(3);
        training.merge(collect(&mut core, &mut stream, Event::ALL, &session).samples);
    }
    let model = SpireModel::train(&training, TrainConfig::default())?;

    let outdir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(outdir)?;

    for (event, file) in [
        ("br_misp_retired.all_branches", "bp1_roofline.svg"),
        ("idq.dsb_uops", "db2_roofline.svg"),
    ] {
        let metric = MetricId::new(event);
        let roofline = model
            .roofline(&metric)
            .ok_or("metric missing from the trained model")?;
        let samples = training.samples_for(&metric);
        let chart = roofline_chart(roofline, samples.iter(), true);
        let path = outdir.join(file);
        std::fs::write(&path, chart.to_svg(720, 480))?;
        println!("wrote {}", path.display());
        println!("{}", chart.to_ascii(72, 18));
    }
    Ok(())
}
