//! Architecture independence: SPIRE retrains against any processor just
//! by resampling its counters. This example builds a custom "little"
//! core (2-wide, small buffers, slow memory), shows that the same
//! workload bottlenecks differently there, and trains a separate SPIRE
//! model for it — no model code changes, exactly the paper's portability
//! claim.
//!
//! Run with: `cargo run --release --example custom_cpu`

use spire_core::catalog::MetricCatalog;
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::{collect, SessionConfig};
use spire_sim::{BackendConfig, Core, CoreConfig, Event, FrontendConfig, MemoryConfig};
use spire_tma::analyze;
use spire_workloads::suite;

/// A small in-order-ish edge core: half the width, quarter the buffers,
/// much slower DRAM.
fn little_core() -> CoreConfig {
    CoreConfig {
        frontend: FrontendConfig {
            dsb_width: 3,
            mite_width: 1,
            ms_width: 2,
            ms_switch_penalty: 3,
            idq_capacity: 24,
            mispredict_redirect_penalty: 10,
        },
        backend: BackendConfig {
            issue_width: 2,
            retire_width: 2,
            rob_size: 48,
            rs_size: 20,
            ports: 4,
            int_div_latency: 32,
            fp_div_latency: 24,
            recovery_penalty: 8,
        },
        memory: MemoryConfig {
            l1_latency: 3,
            l2_latency: 12,
            l3_latency: 35,
            dram_latency: 320,
            mshrs: 4,
            dram_queue: 6,
            store_buffer: 16,
            lock_latency: 16,
            icache_miss_latency: 40,
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let big = CoreConfig::skylake_server();
    let little = little_core();
    little.validate()?;

    let workload = suite::by_name("parboil", "Stencil").expect("suite workload");

    // The same workload, two machines, two TMA verdicts.
    for (name, cfg) in [
        ("big (skylake-server)", big),
        ("little (edge core)", little),
    ] {
        let mut core = Core::new(cfg);
        let mut stream = workload.stream(7);
        let summary = core.run(&mut stream, 500_000);
        let tma = analyze(core.counters(), &cfg);
        println!(
            "{name}: ipc {:.2} | {} | main: {}",
            summary.ipc(),
            tma.summary(),
            tma.dominant_bottleneck()
        );
    }

    // Retraining SPIRE for the little core is just resampling: the model
    // code never sees an architecture parameter.
    let session = SessionConfig {
        interval_cycles: 60_000,
        slice_cycles: 3_000,
        pmu_slots: 4,
        switch_overhead_cycles: 60,
        max_cycles: 500_000,
    };
    let mut training = spire_core::SampleSet::new();
    for profile in suite::training().into_iter().take(6) {
        let mut core = Core::new(little);
        let mut stream = profile.stream(11);
        training.merge(collect(&mut core, &mut stream, Event::ALL, &session).samples);
    }
    let little_model = SpireModel::train(&training, TrainConfig::default())?;

    let mut core = Core::new(little);
    let mut stream = workload.stream(12);
    let samples = collect(&mut core, &mut stream, Event::ALL, &session).samples;
    let estimate = little_model.estimate(&samples)?;
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());

    println!(
        "\nSPIRE model trained for the little core ({} rooflines).",
        little_model.metric_count()
    );
    println!("top metrics for the stencil workload on the little core:");
    print!("{}", report.to_table(8));
    Ok(())
}
