//! Branch-predictor study: drive a workload's branches through real
//! predictor models instead of a fixed misprediction rate, and watch the
//! machine (and SPIRE's BP metrics) respond.
//!
//! Run with: `cargo run --release --example predictor_study`

use spire_sim::predictor::{BimodalPredictor, GsharePredictor, PerfectPredictor};
use spire_sim::{Core, CoreConfig, Event};
use spire_tma::analyze;
use spire_workloads::{suite, BranchSiteModel, PredictedBranches};

fn main() {
    let profile = suite::by_name("numenta-nab", "Relative Entropy").expect("suite workload");
    // Mostly-periodic sites with near-deterministic biased fillers: the
    // global history stays informative, so a history-based predictor can
    // actually learn the patterns. (Noisy biased sites would scramble the
    // history and neutralize gshare's advantage — try it.)
    let sites = BranchSiteModel {
        sites: 96,
        taken_bias: 0.98,
        periodic_fraction: 0.8,
        period: 4,
    };
    let cfg = CoreConfig::skylake_server();
    let cycles = 300_000;

    println!(
        "{:<26} {:>10} {:>8} {:>10} {:>10}",
        "front-end", "misp rate", "ipc", "bad-spec", "misp/ki"
    );

    // Same workload, three front-ends: an oracle, a history-less bimodal
    // table, and a gshare with global history.
    let run = |label: &str, mispredicts: &mut dyn FnMut() -> (f64, Core)| {
        let (rate, core) = mispredicts();
        let tma = analyze(core.counters(), &cfg);
        println!(
            "{label:<26} {:>9.2}% {:>8.2} {:>9.1}% {:>10.2}",
            rate * 100.0,
            tma.ipc,
            tma.level1.bad_speculation * 100.0,
            tma.bad_speculation.mispredicts_pki
        );
    };

    run("perfect (oracle)", &mut || {
        let mut s = PredictedBranches::new(profile.stream(1), sites, PerfectPredictor, 2);
        let mut core = Core::new(cfg);
        core.run(&mut s, cycles);
        (s.mispredict_rate(), core)
    });
    run("bimodal 4k entries", &mut || {
        let mut s = PredictedBranches::new(profile.stream(1), sites, BimodalPredictor::new(12), 2);
        let mut core = Core::new(cfg);
        core.run(&mut s, cycles);
        (s.mispredict_rate(), core)
    });
    run("gshare 4k entries", &mut || {
        let mut s =
            PredictedBranches::new(profile.stream(1), sites, GsharePredictor::new(12, 10), 2);
        let mut core = Core::new(cfg);
        core.run(&mut s, cycles);
        (s.mispredict_rate(), core)
    });

    // The machine-visible effect: recovery cycles scale with the
    // predictor's miss rate.
    let mut s = PredictedBranches::new(profile.stream(1), sites, BimodalPredictor::new(12), 2);
    let mut core = Core::new(cfg);
    core.run(&mut s, cycles);
    println!(
        "\nbimodal recovery cycles: {} of {} total",
        core.counters().get(Event::IntMiscRecoveryCycles),
        core.counters().get(Event::CpuClkUnhaltedThread)
    );
    println!(
        "gshare learns the periodic branch sites that history-less bimodal cannot,\n\
         so its misprediction rate, bad-speculation share, and recovery cycles drop."
    );
}
