//! Umbrella crate: re-exports the SPIRE reproduction workspace for examples
//! and integration tests.

pub use spire_baselines as baselines;
pub use spire_core as core;
pub use spire_counters as counters;
pub use spire_plot as plot;
pub use spire_sim as sim;
pub use spire_tma as tma;
pub use spire_workloads as workloads;
