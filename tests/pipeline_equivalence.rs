//! Locks the pipeline engine's bit-identical guarantee: models,
//! snapshots, estimates, and bottleneck rankings produced through
//! `spire_core::pipeline` stages are byte-for-byte equal to the same
//! artifacts produced by direct library calls — at both `--threads 1`
//! (serial) and `--threads 0` (auto parallel).

use spire_core::catalog::MetricCatalog;
use spire_core::pipeline::{
    AnalyzeStage, BuildStage, EstimateStage, Pipeline, PipelineConfig, RunContext, Stage,
    TrainStage,
};
use spire_core::{
    BottleneckReport, ModelSnapshot, Sample, SampleSet, SpireModel, TrainConfig, TrainStrictness,
};
use spire_counters::Dataset;

/// A deterministic multi-workload, multi-metric dataset with enough
/// spread to exercise both hull and graph fitting.
fn fixture_dataset() -> Dataset {
    let mut ds = Dataset::new();
    for (w, label) in ["wl_a", "wl_b", "wl_c"].iter().enumerate() {
        let mut set = SampleSet::new();
        for (m, metric) in ["m_alpha", "m_beta", "m_gamma", "m_delta"]
            .iter()
            .enumerate()
        {
            for i in 1..14 {
                let x = (i * (m + 2) + w) as f64;
                let y = 40.0 - (i as f64) - (w as f64) * 0.5;
                set.push(Sample::new(*metric, 10.0 + w as f64, x, y.max(1.0)).unwrap());
            }
        }
        ds.insert(*label, set);
    }
    ds
}

fn labeled_sets(dataset: &Dataset) -> Vec<(String, SampleSet)> {
    dataset
        .iter()
        .map(|(label, set)| (label.to_owned(), set.clone()))
        .collect()
}

#[test]
fn pipeline_artifacts_are_bit_identical_to_direct_api() {
    let dataset = fixture_dataset();
    for threads in [1usize, 0] {
        let config = TrainConfig {
            threads,
            ..TrainConfig::default()
        };

        // Direct API path (the pre-refactor CLI/bench code path).
        let direct = SpireModel::train_with_report(
            &dataset.merged(),
            config.clone(),
            TrainStrictness::Lenient,
        )
        .unwrap();
        let direct_snapshot = ModelSnapshot::from_model(&direct.model).unwrap().to_json();
        let samples = dataset.get("wl_b").unwrap();
        let direct_estimate = direct.model.estimate(samples).unwrap();
        let direct_report = BottleneckReport::new(&direct_estimate, &MetricCatalog::table_iii());

        // Pipeline path: Build -> Train, then Estimate -> Analyze.
        let mut ctx = RunContext::new(PipelineConfig {
            train: config,
            ..PipelineConfig::default()
        });
        let outcome = Pipeline::new(BuildStage)
            .then(TrainStage)
            .run(labeled_sets(&dataset), &mut ctx)
            .unwrap();
        let pipe_snapshot = ModelSnapshot::from_model(&outcome.model).unwrap().to_json();
        let pipe_estimate = EstimateStage {
            model: &outcome.model,
        }
        .execute(samples.clone(), &mut ctx)
        .unwrap();
        let pipe_report = AnalyzeStage::default()
            .execute(pipe_estimate.clone(), &mut ctx)
            .unwrap();

        // Serialized artifacts must match byte for byte.
        assert_eq!(
            serde_json::to_string(&direct.model).unwrap(),
            serde_json::to_string(&outcome.model).unwrap(),
            "model JSON diverged at threads={threads}"
        );
        assert_eq!(
            direct_snapshot, pipe_snapshot,
            "snapshot bytes diverged at threads={threads}"
        );
        assert_eq!(
            serde_json::to_string(&direct_estimate).unwrap(),
            serde_json::to_string(&pipe_estimate).unwrap(),
            "estimate JSON diverged at threads={threads}"
        );
        assert_eq!(
            direct_report.rows(),
            pipe_report.rows(),
            "ranking diverged at threads={threads}"
        );
        assert_eq!(direct_report.throughput(), pipe_report.throughput());
        assert_eq!(
            serde_json::to_string(&direct.report).unwrap(),
            serde_json::to_string(&outcome.report).unwrap(),
            "train report diverged at threads={threads}"
        );
    }
}

#[test]
fn serve_path_estimates_are_bit_identical_to_the_direct_api() {
    // The daemon's coalesced batch path (`estimate_batch` over
    // concatenated SoA columns) and a real client round trip must both
    // reproduce `SpireModel::estimate` exactly, bit for bit.
    let dataset = fixture_dataset();
    let trained = SpireModel::train_with_report(
        &dataset.merged(),
        TrainConfig::default(),
        TrainStrictness::Lenient,
    )
    .unwrap();
    let model = trained.model;

    // Library-level: the batched path against the scalar path.
    let sets: Vec<&SampleSet> = dataset.iter().map(|(_, set)| set).collect();
    let batched = model.estimate_batch(&sets);
    for (set, batched) in sets.iter().zip(&batched) {
        let direct = model.estimate(set).unwrap();
        let batched = batched.as_ref().unwrap();
        assert_eq!(
            serde_json::to_string(&direct).unwrap(),
            serde_json::to_string(batched).unwrap(),
            "estimate_batch diverged from estimate"
        );
    }

    // Wire-level: the same estimates served over the daemon protocol.
    let dir = std::env::temp_dir().join(format!("spire-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    spire_core::write_atomic(&path, &ModelSnapshot::from_model(&model).unwrap().to_json()).unwrap();
    let server = spire_serve::Server::bind(
        spire_serve::ServerConfig::default(),
        vec![("m".to_owned(), path)],
        Vec::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    let mut client = spire_serve::Client::connect(addr).unwrap();
    for (label, set) in dataset.iter() {
        let response = client.estimate("m", set).unwrap();
        assert!(response.ok, "serve estimate failed for {label}");
        let direct = model.estimate(set).unwrap();
        assert_eq!(
            response.throughput.unwrap().to_bits(),
            direct.throughput().to_bits(),
            "served throughput diverged for {label}"
        );
        let per_metric = response.per_metric.unwrap();
        assert_eq!(per_metric.len(), direct.per_metric().len());
        for row in &per_metric {
            let me = &direct.per_metric()[&spire_core::MetricId::new(&row.metric)];
            assert_eq!(row.merged.to_bits(), me.merged.to_bits());
            assert_eq!(row.sample_count, me.sample_count);
        }
    }
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serial_and_parallel_training_agree_through_the_pipeline() {
    // The two thread settings must also agree with each other (the
    // engine preserves the library's determinism guarantee).
    let dataset = fixture_dataset();
    let mut models = Vec::new();
    for threads in [1usize, 0] {
        let mut ctx = RunContext::new(PipelineConfig {
            train: TrainConfig {
                threads,
                ..TrainConfig::default()
            },
            ..PipelineConfig::default()
        });
        let mut outcome = Pipeline::new(BuildStage)
            .then(TrainStage)
            .run(labeled_sets(&dataset), &mut ctx)
            .unwrap();
        // The model records the thread setting it was trained with;
        // normalize it so the comparison covers the learned rooflines.
        outcome.model.set_threads(1);
        models.push(serde_json::to_string(&outcome.model).unwrap());
    }
    assert_eq!(models[0], models[1]);
}
