//! Integration tests that pin the paper's qualitative claims, so a
//! regression in any substrate that would break a figure or table shows
//! up as a test failure rather than a silently wrong experiment.

use spire_core::{MetricId, SampleSet, SpireModel, TrainConfig};
use spire_counters::{collect, SessionConfig};
use spire_sim::{Core, CoreConfig, Event};
use spire_tma::analyze;
use spire_workloads::suite;

fn session() -> SessionConfig {
    SessionConfig {
        interval_cycles: 40_000,
        slice_cycles: 2_500,
        pmu_slots: 4,
        switch_overhead_cycles: 40,
        max_cycles: 400_000,
    }
}

/// Collects a diverse training corpus (every other training workload).
fn corpus() -> SampleSet {
    let mut all = SampleSet::new();
    for profile in suite::training().into_iter().step_by(2) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = profile.stream(21);
        all.merge(collect(&mut core, &mut stream, Event::ALL, &session()).samples);
    }
    all
}

/// Fig. 7 (left): the BP.1 roofline learns that branch mispredictions
/// limit max IPC — the estimate rises with instructions-per-misprediction
/// over the left region.
#[test]
fn fig7_bp1_roofline_rises_with_intensity() {
    let model = SpireModel::train(&corpus(), TrainConfig::default()).unwrap();
    let bp1 = model
        .roofline(&MetricId::new("br_misp_retired.all_branches"))
        .expect("BP.1 trained");
    let apex = bp1.apex().expect("non-constant roofline");
    let low = bp1.estimate(apex.x * 0.02);
    let mid = bp1.estimate(apex.x * 0.3);
    let high = bp1.estimate(apex.x);
    assert!(
        low <= mid + 1e-9 && mid <= high + 1e-9,
        "{low} {mid} {high}"
    );
    assert!(high > low, "the roofline must actually rise");
}

/// Fig. 7 (middle/right): the DB.2 roofline learns that losing DSB
/// coverage lowers the IPC upper bound — the estimate falls beyond the
/// apex.
#[test]
fn fig7_db2_roofline_falls_beyond_apex() {
    let model = SpireModel::train(&corpus(), TrainConfig::default()).unwrap();
    let db2 = model
        .roofline(&MetricId::new("idq.dsb_uops"))
        .expect("DB.2 trained");
    let apex = db2.apex().expect("non-constant roofline");
    let at_apex = db2.estimate(apex.x);
    let far = db2.estimate(apex.x * 6.0);
    assert!(
        far < at_apex * 0.8,
        "DB.2 must drop beyond the apex: {at_apex} -> {far}"
    );
}

/// Section IV: multiplexed sampling is cheap — single-digit-percent
/// overhead at the paper's interval/slice geometry.
#[test]
fn sampling_overhead_is_small() {
    let profile = suite::by_name("parboil", "Stencil").unwrap();
    let mut core = Core::new(CoreConfig::skylake_server());
    let mut stream = profile.stream(5);
    let report = collect(&mut core, &mut stream, Event::ALL, &session());
    let f = report.overhead_fraction();
    assert!(f > 0.0, "overhead must be modeled");
    assert!(f < 0.05, "overhead {f} should be a few percent");
}

/// Table I premise: the four testing workloads are the strongest
/// examples of their four distinct TMA bottlenecks.
#[test]
fn table1_test_workloads_cover_all_four_areas() {
    let cfg = CoreConfig::skylake_server();
    let mut seen = std::collections::BTreeSet::new();
    for profile in suite::testing() {
        let mut core = Core::new(cfg);
        let mut stream = profile.stream(13);
        core.run(&mut stream, 400_000);
        let tma = analyze(core.counters(), &cfg);
        assert_eq!(
            tma.dominant_bottleneck(),
            profile.expected_bottleneck,
            "{} ({}): {}",
            profile.name,
            profile.config,
            tma.summary()
        );
        seen.insert(profile.expected_bottleneck);
    }
    assert_eq!(seen.len(), 4, "all four areas must be covered");
}

/// The paper's overall claim: SPIRE requires no architecture-specific
/// inputs — the identical training code works against a different core
/// configuration's counters.
#[test]
fn spire_retrains_on_a_different_core_without_changes() {
    let mut little = CoreConfig::skylake_server();
    little.backend.issue_width = 2;
    little.backend.retire_width = 2;
    little.backend.rob_size = 64;
    little.backend.rs_size = 32;
    little.memory.dram_latency = 320;
    little.validate().unwrap();

    let mut all = SampleSet::new();
    for profile in suite::training().into_iter().step_by(4) {
        let mut core = Core::new(little);
        let mut stream = profile.stream(17);
        all.merge(collect(&mut core, &mut stream, Event::ALL, &session()).samples);
    }
    let model = SpireModel::train(&all, TrainConfig::default()).unwrap();
    assert!(model.metric_count() > 30);

    // Estimates from the little-core model are bounded by the little
    // core's lower pipeline width (IPC can never reach 4).
    let profile = suite::by_name("fftw", "Stock, 1D FFT, 4096").unwrap();
    let mut core = Core::new(little);
    let mut stream = profile.stream(18);
    let samples = collect(&mut core, &mut stream, Event::ALL, &session()).samples;
    let est = model.estimate(&samples).unwrap();
    assert!(est.throughput() <= 2.0 + 1e-9);
    assert!(est.throughput() > 0.0);
}

/// The "pool of low-valued metrics" suggestion: the uncertainty pool is
/// a ranking prefix and grows with tolerance.
#[test]
fn uncertainty_pool_grows_with_tolerance() {
    let model = SpireModel::train(&corpus(), TrainConfig::default()).unwrap();
    let profile = suite::by_name("onnx", "T5 Encoder, Std.").unwrap();
    let mut core = Core::new(CoreConfig::skylake_server());
    let mut stream = profile.stream(19);
    let samples = collect(&mut core, &mut stream, Event::ALL, &session()).samples;
    let estimate = model.estimate(&samples).unwrap();
    let report = spire_core::BottleneckReport::new(
        &estimate,
        &spire_core::catalog::MetricCatalog::table_iii(),
    );
    let tight = report.uncertainty_pool(0.01).len();
    let loose = report.uncertainty_pool(0.2).len();
    assert!(tight >= 1);
    assert!(loose >= tight);
}
