//! Cross-crate integration tests: the full paper pipeline — simulate,
//! sample through the multiplexed PMU, train the SPIRE ensemble, rank
//! bottlenecks, and validate against the TMA baseline.

use spire_core::catalog::{MetricCatalog, UarchArea};
use spire_core::{BottleneckReport, SpireModel, TrainConfig};
use spire_counters::{collect, Dataset, SessionConfig};
use spire_sim::{Core, CoreConfig, Event};
use spire_tma::analyze;
use spire_workloads::suite;

fn quick_session() -> SessionConfig {
    SessionConfig {
        interval_cycles: 40_000,
        slice_cycles: 2_500,
        pmu_slots: 4,
        switch_overhead_cycles: 40,
        max_cycles: 350_000,
    }
}

/// Samples one workload and returns its sample set.
fn sample_workload(name: &str, config: &str, seed: u64) -> spire_core::SampleSet {
    let profile = suite::by_name(name, config).expect("workload exists");
    let mut core = Core::new(CoreConfig::skylake_server());
    let mut stream = profile.stream(seed);
    collect(&mut core, &mut stream, Event::ALL, &quick_session()).samples
}

/// Trains a model over a subset of the training suite. Every other
/// workload is taken so the subset spans all four bottleneck areas
/// (consecutive prefixes would miss the front-end-bound entries).
fn train_subset(n: usize, seed: u64) -> SpireModel {
    let mut all = spire_core::SampleSet::new();
    for profile in suite::training().into_iter().step_by(2).take(n) {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = profile.stream(seed);
        all.merge(collect(&mut core, &mut stream, Event::ALL, &quick_session()).samples);
    }
    SpireModel::train(&all, TrainConfig::default()).expect("trains")
}

#[test]
fn spire_flags_the_memory_bottleneck_of_onnx() {
    let model = train_subset(8, 1);
    let samples = sample_workload("onnx", "T5 Encoder, Std.", 2);
    let estimate = model.estimate(&samples).expect("common metrics");
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
    assert!(
        report.area_in_top(UarchArea::Memory, 10),
        "memory metrics must appear in ONNX's top 10:\n{}",
        report.to_table(10)
    );
}

#[test]
fn spire_flags_the_frontend_bottleneck_of_tnn() {
    let model = train_subset(8, 1);
    let samples = sample_workload("tnn", "SqueezeNet v1.1", 2);
    let estimate = model.estimate(&samples).expect("common metrics");
    let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
    assert!(
        report.area_in_top(UarchArea::FrontEnd, 10),
        "front-end metrics must appear in TNN's top 10:\n{}",
        report.to_table(10)
    );
}

#[test]
fn ensemble_estimate_tracks_measured_ipc_within_2x() {
    // The ensemble estimates an upper bound on throughput; it should be
    // in the right ballpark of the measured IPC, not orders off.
    let model = train_subset(8, 1);
    for (name, config) in [
        ("onnx", "T5 Encoder, Std."),
        ("tnn", "SqueezeNet v1.1"),
        ("parboil", "CUTCP"),
    ] {
        let profile = suite::by_name(name, config).unwrap();
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = profile.stream(2);
        let summary = core.run(&mut stream, 350_000);
        let samples = sample_workload(name, config, 2);
        let est = model.estimate(&samples).unwrap().throughput();
        let ratio = est / summary.ipc();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{name}: estimate {est:.2} vs measured {:.2}",
            summary.ipc()
        );
    }
}

#[test]
fn tma_and_spire_agree_on_test_workloads() {
    let model = train_subset(10, 3);
    for profile in suite::testing() {
        let mut core = Core::new(CoreConfig::skylake_server());
        let mut stream = profile.stream(4);
        core.run(&mut stream, 350_000);
        let tma = analyze(core.counters(), &CoreConfig::skylake_server());

        let samples = sample_workload(&profile.name, &profile.config, 4);
        let estimate = model.estimate(&samples).expect("common metrics");
        let report = BottleneckReport::new(&estimate, &MetricCatalog::table_iii());
        assert!(
            report.area_in_top(tma.dominant_bottleneck(), 10),
            "{} ({}): TMA sees {} but SPIRE top-10 misses it:\n{}",
            profile.name,
            profile.config,
            tma.dominant_bottleneck(),
            report.to_table(10)
        );
    }
}

#[test]
fn dataset_round_trip_preserves_training_results() {
    let samples = sample_workload("parboil", "Stencil", 5);
    let mut dataset = Dataset::new();
    dataset.insert("stencil", samples);
    let json = dataset.to_json().unwrap();
    let back = Dataset::from_json(&json).unwrap();

    let a = SpireModel::train(&dataset.merged(), TrainConfig::default()).unwrap();
    let b = SpireModel::train(&back.merged(), TrainConfig::default()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn model_persists_through_json() {
    let model = train_subset(3, 6);
    let json = serde_json::to_string(&model).unwrap();
    let back: SpireModel = serde_json::from_str(&json).unwrap();
    let samples = sample_workload("graph500", "Scale: 29", 7);
    let x = model.estimate(&samples).unwrap();
    let y = back.estimate(&samples).unwrap();
    assert_eq!(x.throughput(), y.throughput());
}

#[test]
fn sampling_is_deterministic_end_to_end() {
    let a = sample_workload("mafft", "", 9);
    let b = sample_workload("mafft", "", 9);
    assert_eq!(a, b);
}

#[test]
fn every_table_iii_metric_gets_a_roofline() {
    let model = train_subset(6, 10);
    let catalog = MetricCatalog::table_iii();
    for info in catalog.iter() {
        let id = spire_core::MetricId::new(&info.event);
        assert!(
            model.roofline(&id).is_some(),
            "no roofline trained for {} ({})",
            info.event,
            info.abbr
        );
    }
}
