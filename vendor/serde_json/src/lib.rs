//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` shim's `Content` model to JSON text and parses
//! JSON text back. Covers the workspace's usage: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and an [`Error`] type usable with
//! `io::Error::other`.
//!
//! Floating-point values are written with Rust's shortest round-trip
//! formatting (the `float_roundtrip` behaviour of the real crate).
//! Non-finite floats serialize as `null`, matching `serde_json`.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Error produced by JSON serialization or parsing.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Convenient alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --- Serialization. --------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Integral values print with a trailing `.0` so they re-parse as
        // floats; serde_json prints `1.0` for the f64 one as well.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, indent.map(|n| n + 1));
                write_content(out, item, indent.map(|n| n + 1))?;
            }
            push_newline_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, indent.map(|n| n + 1));
                match k {
                    Content::Str(s) => write_escaped(out, s),
                    other => {
                        return Err(Error::new(format!(
                            "JSON object keys must be strings, found {other:?}"
                        )))
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent.map(|n| n + 1))?;
            }
            push_newline_indent(out, indent);
            out.push('}');
        }
    }
    Ok(())
}

fn push_newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a map with non-string keys.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::to_content(value);
    let mut out = String::new();
    write_content(&mut out, &content, None)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a map with non-string keys.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::to_content(value);
    let mut out = String::new();
    write_content(&mut out, &content, Some(0))?;
    Ok(out)
}

// --- Parsing. --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Bulk-copy the unescaped run up to the next quote or
                    // backslash. Validating only the run keeps parsing
                    // linear — re-validating the whole remaining input per
                    // character made large documents quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    serde::from_content::<T, Error>(content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_owned()).unwrap(), "\"a\\\"b\"");
        let v: f64 = from_str("2.0").unwrap();
        assert_eq!(v, 2.0);
        let v: u64 = from_str(" 42 ").unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MAX, 5e-324] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn vec_and_nested_structures_round_trip() {
        let v = vec![vec![1.0f64, 2.0], vec![], vec![3.5]];
        let json = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn map_round_trips_and_pretty_prints() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("alpha".to_owned(), vec![1u64, 2]);
        m.insert("beta".to_owned(), vec![]);
        let compact = to_string(&m).unwrap();
        assert_eq!(compact, "{\"alpha\":[1,2],\"beta\":[]}");
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"alpha\""));
        let back: std::collections::BTreeMap<String, Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\t newline\n quote\" backslash\\ unicode \u{263a}".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
