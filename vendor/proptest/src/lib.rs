//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `Just` / union / vec strategies,
//! `any::<bool>()`, `prop::bool::weighted`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! formatted assertion message only), no persistence (`.proptest-regressions`
//! files are ignored), and the value stream is deterministic per test name
//! rather than seeded from the environment.

#![forbid(unsafe_code)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Error signalling a failed test case (from `prop_assert!` et al).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic RNG backing strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: SmallRng,
    }

    impl TestRng {
        /// Creates an RNG seeded from the test's name, so each test has a
        /// stable stream across runs.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a, for a stable cross-platform seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: SmallRng::seed_from_u64(hash),
            }
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type.
    pub fn boxed_strategy<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.rng.gen_range(0..self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= *weight;
            }
            unreachable!("pick is bounded by the weight total")
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: rand::distributions::uniform::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: rand::distributions::uniform::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
        (A, B, C, D, E, F, G, H, I),
        (A, B, C, D, E, F, G, H, I, J),
        (A, B, C, D, E, F, G, H, I, J, K),
        (A, B, C, D, E, F, G, H, I, J, K, L),
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical random distribution.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `A` (e.g. `any::<bool>()`).
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::weighted`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// Returns a strategy that is `true` with probability `p`.
    #[must_use]
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen_bool(self.0)
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed_strategy($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed_strategy($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn` runs `cases` times with fresh random
/// inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    ::std::panic!(
                        "proptest `{}` failed on case {}/{}:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __err
                    );
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_unions_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        let strat = (0.5f64..2.0, prop_oneof![2 => Just(1u32), 1 => 10u32..20]);
        for _ in 0..500 {
            let (f, u) = strat.generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            assert!(u == 1 || (10..20).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::test_runner::TestRng::for_test("lengths");
        let strat = prop::collection::vec(any::<bool>(), 1..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let mut rng = crate::test_runner::TestRng::for_test("map");
        let strat = (1u64..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, assertions, and config plumbing.
        #[test]
        fn macro_generates_cases(x in 0u64..10, flag in any::<bool>()) {
            prop_assert!(x < 10, "x was {x}");
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    #[allow(unnameable_test_items)] // the nested proptest! emits a #[test] fn
    fn failing_assertion_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was only {x}");
            }
        }
        always_fails();
    }
}
