//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment (no registry
//! access), so this crate implements the subset of its API that the SPIRE
//! workspace uses: the [`Serialize`]/[`Deserialize`] traits, a simplified
//! self-describing data model ([`Content`]), and — behind the `derive`
//! feature — `#[derive(Serialize, Deserialize)]` for structs and enums.
//!
//! The data model is deliberately small: serializers receive a fully built
//! [`Content`] tree instead of a streamed visitor sequence. That is enough
//! for the JSON round-tripping this workspace performs and keeps the shim
//! auditable.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree this shim's serializers consume and its
/// deserializers produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, tuple, array).
    Seq(Vec<Content>),
    /// A map or struct; insertion-ordered key/value pairs.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Looks up `key` in a `Map` whose keys are strings.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Content::Str(s) if s == key => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }
}

pub mod ser {
    //! Serialization half of the shim.

    use super::Content;
    use std::fmt;

    /// Error trait for serializers.
    pub trait Error: Sized + std::error::Error {
        /// Builds a serializer error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A serializer: consumes one [`Content`] tree.
    ///
    /// The convenience `serialize_*` methods mirror the real serde API at
    /// the call sites this workspace contains.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Consumes a fully built value tree.
        fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

        /// Serializes a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Str(v.to_owned()))
        }

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Bool(v))
        }

        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::U64(v))
        }

        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::I64(v))
        }

        /// Serializes a floating-point number.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::F64(v))
        }

        /// Serializes a unit value.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Null)
        }
    }

    /// A serializer whose output is the [`Content`] tree itself.
    pub struct ContentSerializer;

    /// Error produced by [`ContentSerializer`] (it cannot actually fail,
    /// but the trait requires an error type).
    #[derive(Debug)]
    pub struct ContentError(pub String);

    impl fmt::Display for ContentError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl Error for ContentError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    impl super::de::Error for ContentError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;

        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }
}

pub mod de {
    //! Deserialization half of the shim.

    use super::Content;
    use std::fmt;
    use std::marker::PhantomData;

    /// Error trait for deserializers; mirrors `serde::de::Error`.
    pub trait Error: Sized + std::error::Error {
        /// Builds a deserializer error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A deserializer: produces one [`Content`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Produces the value tree to deserialize from.
        fn deserialize_content(self) -> Result<Content, Self::Error>;
    }

    /// A deserializer over an already-parsed [`Content`] tree, generic in
    /// the error type so derived code can thread the outer deserializer's
    /// error through nested field decoding.
    pub struct ContentDeserializer<E> {
        content: Content,
        marker: PhantomData<E>,
    }

    impl<E> ContentDeserializer<E> {
        /// Wraps a content tree.
        pub fn new(content: Content) -> Self {
            ContentDeserializer {
                content,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
        type Error = E;

        fn deserialize_content(self) -> Result<Content, E> {
            Ok(self.content)
        }
    }
}

/// A type that can be serialized into the shim's data model.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized from the shim's data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from `deserializer`.
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

pub use ser::Serializer;

/// Serializes any value to a [`Content`] tree (helper used by derived
/// code and by `serde_json`).
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    value
        .serialize(ser::ContentSerializer)
        .expect("content serialization is infallible")
}

/// Deserializes a typed value out of a [`Content`] tree, threading the
/// caller's error type (helper used by derived code and by `serde_json`).
pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
    T::deserialize(de::ContentDeserializer::<E>::new(content))
}

// --- Serialize impls for primitives and std types. -------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                let v: u64 = match c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                        v as u64
                    }
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    de::Error::custom(format_args!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_u64(v as u64)
                } else {
                    s.serialize_i64(v)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                let v: i64 = match c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => v as i64,
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    de::Error::custom(format_args!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format_args!(
                "expected number, found {other:?}"
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(de::Error::custom(format_args!(
                "expected boolean, found {other:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Str(v) => Ok(v),
            other => Err(de::Error::custom(format_args!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_unit(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Null => Ok(None),
            c => from_content::<T, D::Error>(c).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Seq(items) => items.into_iter().map(from_content::<T, D::Error>).collect(),
            other => Err(de::Error::custom(format_args!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Seq(items) if items.len() == N => {
                let values: Vec<T> = items
                    .into_iter()
                    .map(from_content::<T, D::Error>)
                    .collect::<Result<_, _>>()?;
                values
                    .try_into()
                    .map_err(|_| de::Error::custom("array length mismatch"))
            }
            other => Err(de::Error::custom(format_args!(
                "expected sequence of length {N}, found {other:?}"
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Map(
            self.iter()
                .map(|(k, v)| (to_content(k), to_content(v)))
                .collect(),
        ))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        from_content::<K, D::Error>(k)?,
                        from_content::<V, D::Error>(v)?,
                    ))
                })
                .collect(),
            other => Err(de::Error::custom(format_args!(
                "expected map, found {other:?}"
            ))),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::Seq(vec![$(to_content(&self.$n)),+]))
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: de::Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match d.deserialize_content()? {
                    Content::Seq(items) if items.len() == LEN => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $n;
                            from_content::<$t, __D::Error>(it.next().expect("length checked"))?
                        },)+))
                    }
                    other => Err(de::Error::custom(format_args!(
                        "expected sequence of length {LEN}, found {other:?}"
                    ))),
                }
            }
        }
    )+};
}

serialize_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_content() {
        assert_eq!(to_content(&3u32), Content::U64(3));
        assert_eq!(to_content(&-2i64), Content::I64(-2));
        assert_eq!(to_content(&1.5f64), Content::F64(1.5));
        assert_eq!(to_content(&true), Content::Bool(true));
        assert_eq!(to_content(&"hi".to_owned()), Content::Str("hi".into()));
        let v: Result<u32, ser::ContentError> = from_content(Content::U64(7));
        assert_eq!(v.unwrap(), 7);
    }

    #[test]
    fn vec_and_map_round_trip() {
        let v = vec![1u64, 2, 3];
        let c = to_content(&v);
        let back: Vec<u64> = from_content::<_, ser::ContentError>(c).unwrap();
        assert_eq!(v, back);

        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1.5f64);
        let back: BTreeMap<String, f64> =
            from_content::<_, ser::ContentError>(to_content(&m)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(to_content(&Option::<u32>::None), Content::Null);
        let v: Option<u32> = from_content::<_, ser::ContentError>(Content::Null).unwrap();
        assert_eq!(v, None);
    }
}
