//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Mirrors the API surface this workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple median-of-samples timer instead of the statistical engine.
//!
//! Smoke mode: when run with `--test` (as `cargo test --benches` does) or
//! with `SPIRE_BENCH_SMOKE=1` in the environment, every benchmark body runs
//! exactly once so CI can validate the benches cheaply.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, for parity with the real crate.
pub use std::hint::black_box;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
        || std::env::var_os("SPIRE_BENCH_SMOKE").is_some_and(|v| v == "1")
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Size the batch so one sample takes at least ~1 ms, so the timer
        // resolution does not dominate short routines.
        let probe = Instant::now();
        black_box(routine());
        let single = probe.elapsed();
        let batch = if single >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / single.as_nanos().max(1) + 1) as u32
        };
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed() / batch
            })
            .collect();
        per_iter.sort_unstable();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let smoke = smoke_mode();
    let mut bencher = Bencher {
        samples,
        smoke,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        _ if smoke => println!("bench {label} ... ok (smoke)"),
        Some(median) => println!("bench {label} ... median {median:?}"),
        None => println!("bench {label} ... no measurement"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
    }

    /// Ends the group. (No-op; exists for API parity.)
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, &mut f);
        self
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("fit", 100).to_string(), "fit/100");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn bencher_records_a_measurement() {
        let mut b = Bencher {
            samples: 3,
            smoke: false,
            result: None,
        };
        b.iter(|| std::hint::black_box(17u64.wrapping_mul(31)));
        assert!(b.result.is_some());
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
                b.iter(|| x + 1);
            });
            group.finish();
        }
        c.bench_function("standalone", |b| {
            ran += 1;
            b.iter(|| 2 + 2);
        });
        assert_eq!(ran, 1);
    }
}
