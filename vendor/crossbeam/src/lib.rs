//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented over
//! `std::thread::scope` (stabilized after crossbeam's scoped threads were
//! written). The call-site API matches crossbeam 0.8: the scope closure
//! receives a `&Scope`, `Scope::spawn` passes the scope again to the spawned
//! closure, and `scope()` returns `thread::Result` (`Err` only if a spawned
//! thread panicked with an unjoined handle).

#![forbid(unsafe_code)]

/// Scoped threads with the crossbeam 0.8 calling convention.
pub mod thread {
    /// Result of [`scope`]: `Err` holds a panic payload from an unjoined
    /// child thread.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; spawn borrows data living at least as long as `'env`.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope: all threads spawned within are joined before it
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns_values() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u64).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }

    #[test]
    fn panic_in_unjoined_thread_is_reported() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
