//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually contains — structs with named fields,
//! unit structs, and enums whose variants are unit, tuple, or struct-like —
//! by hand-parsing the item's token stream (the real `syn`/`quote` stack is
//! unavailable offline). Generated code targets the simplified `Content`
//! data model of the sibling `serde` shim.
//!
//! Unsupported shapes (generic types, tuple structs, unions) produce a
//! compile error naming the limitation rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
enum VariantKind {
    Unit,
    /// Tuple variant with `n` unnamed fields.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// The parsed item shape.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Recursively splices `Delimiter::None` groups into the surrounding
/// stream. Items produced by `macro_rules!` expansion arrive with fragment
/// substitutions (`$vis`, `$meta`, ...) wrapped in such invisible groups.
fn flatten(input: TokenStream) -> TokenStream {
    let mut out = TokenStream::new();
    for tree in input {
        match tree {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                out.extend(flatten(g.stream()));
            }
            other => out.extend([other]),
        }
    }
    out
}

/// Parses the derive input item into an [`Item`], or an error message.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = flatten(input).into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`, ...).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            None => Ok(Item::UnitStruct { name }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
                "serde shim derive does not support tuple struct `{name}`"
            )),
            other => Err(format!("unexpected token after struct name: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other}`")),
    }
}

/// Parses `name: Type, ...` named-field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = flatten(stream).into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, found {tree:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        fields.push(field.to_string());
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    Ok(fields)
}

/// Parses enum variants.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = flatten(stream).into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(name) = tree else {
            return Err(format!("expected variant name, found {tree:?}"));
        };
        let name = name.to_string();
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                // Count top-level comma-separated types.
                let mut depth = 0i32;
                let mut count = 1usize;
                let mut any = false;
                for t in inner {
                    any = true;
                    if let TokenTree::Punct(p) = t {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => count += 1,
                            _ => {}
                        }
                    }
                }
                VariantKind::Tuple(if any { count } else { 0 })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        loop {
            match tokens.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Implements `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::serde::Content::Str(::std::string::String::from({f:?})), \
                     ::serde::to_content(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n{pushes}\
                 __serializer.serialize_content(::serde::Content::Map(__fields))"
            )
        }
        Item::UnitStruct { .. } => {
            "__serializer.serialize_content(::serde::Content::Null)".to_owned()
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_content(\
                         ::serde::Content::Str(::std::string::String::from({vname:?}))),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let bind_list = binds.join(", ");
                        let inner = if *n == 1 {
                            "::serde::to_content(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({bind_list}) => __serializer.serialize_content(\
                             ::serde::Content::Map(::std::vec![(\
                             ::serde::Content::Str(::std::string::String::from({vname:?})), \
                             {inner})])),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let bind_list = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__fields.push((::serde::Content::Str(\
                                 ::std::string::String::from({f:?})), \
                                 ::serde::to_content({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bind_list} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::serde::Content, \
                             ::serde::Content)> = ::std::vec::Vec::new();\n{pushes}\
                             __serializer.serialize_content(::serde::Content::Map(\
                             ::std::vec![(::serde::Content::Str(\
                             ::std::string::String::from({vname:?})), \
                             ::serde::Content::Map(__fields))]))\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let name = match &item {
        Item::NamedStruct { name, .. } | Item::UnitStruct { name } | Item::Enum { name, .. } => {
            name
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

/// Generates the `field: ...` initializer list for a named-field body
/// decoded from a `__map` of field name to content.
///
/// A missing field is retried against `Content::Null` before erroring:
/// `Option<T>` deserializes `Null` to `None`, which reproduces real
/// serde's missing-`Option`-field behavior, while other types fail the
/// retry and surface the "missing field" error.
fn named_field_inits(type_label: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: match __map.remove({f:?}) {{\n\
             Some(__c) => ::serde::from_content::<_, __D::Error>(__c)?,\n\
             None => match ::serde::from_content::<_, __D::Error>(::serde::Content::Null) {{\n\
             ::std::result::Result::Ok(__v) => __v,\n\
             ::std::result::Result::Err(_) => return ::std::result::Result::Err(\
             ::serde::de::Error::custom(\"missing field `{f}` of `{type_label}`\")),\n}},\n}},\n"
        ));
    }
    inits
}

/// Boilerplate that converts `__entries` (a content map's pairs) into a
/// string-keyed `__map`.
const MAP_COLLECT: &str = "let mut __map: ::std::collections::BTreeMap<\
    ::std::string::String, ::serde::Content> = ::std::collections::BTreeMap::new();\n\
    for (__k, __v) in __entries {\n\
    if let ::serde::Content::Str(__s) = __k { __map.insert(__s, __v); }\n}\n";

/// Implements `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits = named_field_inits(name, fields);
            format!(
                "match __content {{\n\
                 ::serde::Content::Map(__entries) => {{\n{MAP_COLLECT}\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"expected map for struct {name}, found {{__other:?}}\"))),\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "match __content {{\n\
             ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
             ::std::format!(\"expected null for unit struct {name}, found {{__other:?}}\"))),\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::from_content::<_, __D::Error>(__v)?)),\n"
                            ));
                        } else {
                            let mut elems = String::new();
                            for _ in 0..*n {
                                elems.push_str(
                                    "::serde::from_content::<_, __D::Error>(\
                                     match __it.next() { Some(__c) => __c, None => return \
                                     ::std::result::Result::Err(::serde::de::Error::custom(\
                                     \"tuple variant too short\")) })?,\n",
                                );
                            }
                            data_arms.push_str(&format!(
                                "{vname:?} => match __v {{\n\
                                 ::serde::Content::Seq(__items) => {{\n\
                                 let mut __it = __items.into_iter();\n\
                                 ::std::result::Result::Ok({name}::{vname}({elems}))\n}}\n\
                                 __other => ::std::result::Result::Err(\
                                 ::serde::de::Error::custom(\"expected sequence for tuple \
                                 variant\")),\n}},\n"
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let inits = named_field_inits(vname, fields);
                        data_arms.push_str(&format!(
                            "{vname:?} => match __v {{\n\
                             ::serde::Content::Map(__entries) => {{\n{MAP_COLLECT}\
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}}\n\
                             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                             \"expected map for struct variant\")),\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __content {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = __entries.into_iter().next().expect(\"len checked\");\n\
                 let __k = match __k {{ ::serde::Content::Str(__s) => __s, _ => return \
                 ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"expected string variant key\")) }};\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"expected variant for enum {name}, found {{__other:?}}\"))),\n}}"
            )
        }
    };
    let name = match &item {
        Item::NamedStruct { name, .. } | Item::UnitStruct { name } | Item::Enum { name, .. } => {
            name
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         let __content = __deserializer.deserialize_content()?;\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}
