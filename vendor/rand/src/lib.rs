//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `SmallRng` (xoshiro256++ with a
//! SplitMix64 seeder, matching the real crate's algorithm family),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}`,
//! `distributions::{Distribution, Standard, WeightedIndex}` and
//! `seq::SliceRandom::shuffle`. Deterministic for a given seed; stream values
//! are not expected to match the real crate.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`](distributions::Standard)
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and uniform-range sampling.
pub mod distributions {
    use super::{Rng, RngCore};

    /// Types that can produce values of `T` given a generator.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over the full range
    /// for integers, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Uniform-range machinery mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use super::super::{Rng, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// Ranges that can sample a single value of `T`.
        pub trait SampleRange<T> {
            /// Samples uniformly from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            // Multiply-shift bounded sampling (Lemire); bias is negligible
            // for the spans used here and determinism is what matters.
            let x = rng.next_u64();
            ((x as u128 * span as u128) >> 64) as u64
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(uniform_u64(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            return rng.next_u64() as $t;
                        }
                        start.wrapping_add(uniform_u64_inclusive(rng, span as u64) as $t)
                    }
                }
            )*};
        }

        fn uniform_u64_inclusive<R: RngCore>(rng: &mut R, span: u64) -> u64 {
            if span == 0 {
                rng.next_u64()
            } else {
                uniform_u64(rng, span)
            }
        }

        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit: f64 = rng.gen();
                        let v = self.start as f64
                            + unit * (self.end as f64 - self.start as f64);
                        // Floating rounding can land exactly on `end`.
                        let v = v as $t;
                        if v >= self.end { self.start } else { v }
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let unit: f64 = rng.gen();
                        (start as f64 + unit * (end as f64 - start as f64)) as $t
                    }
                }
            )*};
        }

        float_range!(f32, f64);
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to a weight table.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<f64>,
        total: f64,
        _marker: std::marker::PhantomData<X>,
    }

    impl<X: Into<f64> + Copy> WeightedIndex<X> {
        /// Builds a sampler from an iterable of non-negative weights.
        ///
        /// # Errors
        ///
        /// Returns [`WeightedError`] if the weights are empty, contain a
        /// negative or non-finite value, or sum to zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex {
                cumulative,
                total,
                _marker: std::marker::PhantomData,
            })
        }
    }

    impl<X> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let unit: f64 = rng.gen();
            let target = unit * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).expect("finite cumulative weights"))
            {
                // Exact hit on a cumulative boundary belongs to the next
                // bucket with positive weight.
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dist = WeightedIndex::new([1.0f64, 0.0, 99.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 10, "{counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64]).is_err());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
